package sqlx

import (
	"fmt"
	"sort"
	"strings"

	"ontoconv/internal/kb"
	"ontoconv/internal/par"
)

// This file is the compiled fast path of the per-turn serving loop: where
// Execute re-resolves names and materializes the full cross-join on every
// call, Prepare compiles a statement once — table bindings and column
// ordinals resolved up front, WHERE conjuncts classified into per-table
// pushdowns (index scans for equality on indexed text columns), equi-join
// keys fed to hash joins, and a residual post-join filter — and the
// resulting Plan executes with flat []kb.Row tuples allocated from a
// chunked arena instead of per-tuple maps.
//
// A Plan may contain <@Name> parameter markers: they compile to slots
// filled at Exec time, so one prepared template serves every turn without
// re-parsing or re-planning.

// tuple is one (partial) join result: the current row of each table
// binding, indexed by binding ordinal. Slots of not-yet-joined bindings
// are nil.
type tuple []kb.Row

// evalFn produces a scalar value for one tuple.
type evalFn func(tu tuple, params []kb.Value) (kb.Value, error)

// predFn evaluates a boolean predicate for one tuple.
type predFn func(tu tuple, params []kb.Value) (bool, error)

// valueRef is a compile-time reference to a comparison value: either a
// literal or a parameter slot filled at Exec time.
type valueRef struct {
	lit   kb.Value
	param int // slot ordinal, or -1 for a literal
}

func (v valueRef) value(params []kb.Value) kb.Value {
	if v.param >= 0 {
		return params[v.param]
	}
	return v.lit
}

// planBinding is one resolved table binding.
type planBinding struct {
	name  string // lowercased binding name
	table *kb.Table
}

// indexEq is an equality pushdown eligible for an index scan: column =
// string-literal/parameter on a text column. When the table has a
// secondary index on the column, Exec probes it; otherwise kb.Table.Lookup
// degrades to a single filtered sequential scan with identical semantics.
type indexEq struct {
	col     int // column ordinal
	colName string
	val     valueRef
}

// planScan is the access path of one binding: an optional equality probe
// plus residual single-table filters applied before the join. When the
// filters compiled into a vectorized program (col) and the table has a
// frozen ColumnSet at execution time, a cold scan runs columnar; the
// row-path filters always remain as the fallback and semantics holder.
type planScan struct {
	eq      *indexEq
	filters []predFn
	col     *colProg
}

// planJoin is one INNER JOIN step onto binding ordinal newB. When hash is
// true the ON clause is a single equality between an already-joined
// binding and the new one; otherwise on is evaluated per candidate pair.
// probeKeys restricts the per-execution hash build to keys present on
// the probe side (a semi-join filter), chosen from cardinality estimates
// when the probe side is much smaller than the new table's scan.
type planJoin struct {
	newB int
	hash bool

	oldB, oldCol int
	newCol       int
	newColName   string // lowercased, for stored-index reuse
	probeKeys    bool

	on predFn
}

type planProj struct{ b, c int }

type planCount struct {
	expr evalFn // nil for COUNT(*)
}

type planOrder struct {
	idx  int
	desc bool
}

// TableColumn names one (table, column) pair a plan would like an index
// on; the bootstrapper uses these hints to build secondary indexes on
// exactly the columns the generated templates filter by.
type TableColumn struct {
	Table  string
	Column string
}

// PlanConfig tunes the physical choices Prepare makes. The zero value is
// the production default: vectorized columnar scans wherever a frozen
// kb.ColumnSet and a statically vectorizable pushdown exist, partition-
// parallel execution on large tables, and estimate-driven hash-join
// build sides. Every combination returns byte-identical results — the
// differential suites pin that — so these knobs exist for benchmarks and
// bit-identity property tests, never for correctness.
type PlanConfig struct {
	// NoColumnar forces every scan onto the row-at-a-time path.
	NoColumnar bool
	// NoParallel keeps columnar scans and hash builds single-threaded
	// regardless of table size (the serial reference execution).
	NoParallel bool
	// BuildSide overrides the hash-join build-side policy.
	BuildSide BuildSide
}

// BuildSide selects which side feeds a hash equi-join's per-execution
// hash table.
type BuildSide int

const (
	// BuildAuto decides per join from kb/stats cardinality estimates:
	// when the probe (already-joined) side is estimated well below the
	// new binding's scan, the build is restricted to probe-side keys.
	BuildAuto BuildSide = iota
	// BuildFull always hashes the new binding's full scan.
	BuildFull
	// BuildProbeKeys always restricts the build to probe-side keys.
	BuildProbeKeys
)

// Plan is a compiled, parameterizable query over one knowledge base.
// Plans are immutable after Prepare and safe for concurrent Exec.
type Plan struct {
	stmt     *SelectStmt
	cfg      PlanConfig
	params   []string
	bindings []planBinding
	scans    []planScan
	joins    []planJoin
	residual []predFn
	hints    []TableColumn

	hasCount bool
	counts   []planCount
	projs    []planProj
	columns  []string
	distinct bool
	orderBy  []planOrder
	limit    int
}

// Params returns the plan's parameter names in first-appearance order.
func (p *Plan) Params() []string { return append([]string(nil), p.params...) }

// String renders the compiled statement (canonical SQL text).
func (p *Plan) String() string { return p.stmt.String() }

// IndexHints lists the (table, column) pairs of every equality pushdown
// the plan compiled; indexing them turns those scans into probes.
func (p *Plan) IndexHints() []TableColumn { return append([]TableColumn(nil), p.hints...) }

// PrepareSQL parses and prepares src against the knowledge base.
func PrepareSQL(base *kb.KB, src string) (*Plan, error) {
	stmt, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return Prepare(base, stmt)
}

// Prepare compiles a parsed statement into an executable plan with the
// default physical configuration. The statement may contain <@Name>
// parameter markers; bind them at Exec time. The statement is not
// retained mutated — the plan shares its (immutable) expression nodes.
func Prepare(base *kb.KB, stmt *SelectStmt) (*Plan, error) {
	return PrepareConfig(base, stmt, PlanConfig{})
}

// PrepareConfig is Prepare with explicit physical choices (see
// PlanConfig).
func PrepareConfig(base *kb.KB, stmt *SelectStmt, cfg PlanConfig) (*Plan, error) {
	p := &Plan{stmt: stmt, cfg: cfg, params: stmt.Params(), distinct: stmt.Distinct, limit: stmt.Limit}
	slots := make(map[string]int, len(p.params))
	for i, name := range p.params {
		slots[name] = i
	}

	add := func(tr TableRef) error {
		t := base.Table(tr.Table)
		if t == nil {
			return fmt.Errorf("sqlx: unknown table %q", tr.Table)
		}
		b := strings.ToLower(tr.Binding())
		for _, existing := range p.bindings {
			if existing.name == b {
				return fmt.Errorf("sqlx: duplicate table binding %q", tr.Binding())
			}
		}
		p.bindings = append(p.bindings, planBinding{name: b, table: t})
		return nil
	}
	if err := add(stmt.From); err != nil {
		return nil, err
	}
	for _, j := range stmt.Joins {
		if err := add(j.Table); err != nil {
			return nil, err
		}
	}
	p.scans = make([]planScan, len(p.bindings))

	// Classify WHERE conjuncts: single-binding predicates are pushed to
	// that binding's scan (equality on a text column becomes an index
	// probe), everything else lands in the residual post-join filter.
	scanExprs := make([][]Expr, len(p.bindings))
	if stmt.Where != nil {
		for _, c := range conjuncts(stmt.Where) {
			refs, err := p.bindingsOf(c)
			if err != nil {
				return nil, err
			}
			if len(refs) == 1 {
				b := refs[0]
				if eq := p.indexableEq(c, b, slots); eq != nil {
					// The hint is unconditional — BuildIndexes prepares
					// templates before any index exists precisely to learn
					// which columns to index. The probe itself only claims
					// the scan when the index is already there: without
					// one, Lookup degrades to a per-exec linear scan, while
					// leaving the conjunct on the filter path keeps the
					// scan eligible for vectorized execution.
					p.hints = append(p.hints, TableColumn{
						Table: p.bindings[b].table.Schema.Name, Column: eq.colName,
					})
					if p.scans[b].eq == nil && p.bindings[b].table.HasIndex(eq.colName) {
						p.scans[b].eq = eq
						continue
					}
				}
				f, err := p.compilePred(c, slots, len(p.bindings))
				if err != nil {
					return nil, err
				}
				p.scans[b].filters = append(p.scans[b].filters, f)
				scanExprs[b] = append(scanExprs[b], c)
				continue
			}
			f, err := p.compilePred(c, slots, len(p.bindings))
			if err != nil {
				return nil, err
			}
			p.residual = append(p.residual, f)
		}
	}

	// Vectorize cold scans: a binding with pushed-down filters but no
	// equality probe compiles its conjuncts into a selection-vector
	// program, all-or-nothing — if any conjunct could error at runtime
	// the scan keeps the row path, so error order never changes. Indexed
	// probes stay row-oriented: their candidate sets are posting lists,
	// already far below batch granularity.
	if !cfg.NoColumnar {
		for b := range p.scans {
			if p.scans[b].eq == nil && len(scanExprs[b]) > 0 {
				p.scans[b].col = p.compileColProg(b, scanExprs[b], slots)
			}
		}
	}

	// Joins: detect the hash-joinable single-equality shape the
	// interpreter uses, with the same visibility rules; everything else
	// becomes a compiled nested-loop predicate.
	for ji, j := range stmt.Joins {
		newB := ji + 1
		pj := planJoin{newB: newB}
		if cmp, ok := j.On.(*Cmp); ok && cmp.Op == "=" {
			lc, lok := cmp.Left.(*ColRef)
			rc, rok := cmp.Right.(*ColRef)
			if lok && rok {
				lb, li, lerr := p.resolveCol(lc, newB+1)
				rb, ri, rerr := p.resolveCol(rc, newB+1)
				if lerr == nil && rerr == nil {
					switch {
					case lb == newB && rb != newB:
						pj.hash, pj.oldB, pj.oldCol, pj.newCol = true, rb, ri, li
					case rb == newB && lb != newB:
						pj.hash, pj.oldB, pj.oldCol, pj.newCol = true, lb, li, ri
					}
				}
			}
		}
		if pj.hash {
			pj.newColName = strings.ToLower(p.bindings[newB].table.Schema.Columns[pj.newCol].Name)
		} else {
			// The interpreter's nested loop resolves ON references
			// against every binding and fails at runtime when the slot
			// is absent; compile with full visibility to match.
			on, err := p.compilePred(j.On, slots, len(p.bindings))
			if err != nil {
				return nil, err
			}
			pj.on = on
		}
		p.joins = append(p.joins, pj)
	}
	p.chooseBuildSides()

	if err := p.compileProjection(slots); err != nil {
		return nil, err
	}
	return p, nil
}

// chooseBuildSides walks the join chain with O(1) cardinality estimates
// (kb/stats distinct counts from the secondary indexes) and restricts
// each hash build to probe-side keys when the probe side is estimated
// well below the new binding's scan — instead of always hashing the new
// side in full. Estimates steer only this physical choice; either choice
// emits identical tuples in identical order (the probe loop is shared),
// which TestHashJoinBuildSidesIdentical pins differentially.
func (p *Plan) chooseBuildSides() {
	est := p.scanEstimate(0)
	for ji := range p.joins {
		j := &p.joins[ji]
		newEst := p.scanEstimate(j.newB)
		if j.hash {
			switch p.cfg.BuildSide {
			case BuildProbeKeys:
				j.probeKeys = true
			case BuildAuto:
				// 4x hysteresis: the key-set pass over the probe side
				// must buy a meaningfully smaller hash build.
				j.probeKeys = est*4 <= newEst
			}
			// Output estimate: probe tuples times expected matches per
			// join key (rows/distinct on the join column).
			if d := p.bindings[j.newB].table.DistinctEstimate(j.newColName); d > 0 {
				per := (newEst + d - 1) / d
				est *= per
			} else if newEst > est {
				est = newEst
			}
		} else {
			est *= newEst
		}
		if est < 1 {
			est = 1
		}
		if est > 1<<40 {
			est = 1 << 40
		}
	}
}

// scanEstimate guesses the candidate-row count of one binding's scan
// from O(1) stats: an equality probe divides the table's rows by the
// index's distinct count, anything else counts as a full scan.
func (p *Plan) scanEstimate(b int) int {
	t := p.bindings[b].table
	n := t.Len()
	if sc := &p.scans[b]; sc.eq != nil {
		if d := t.DistinctEstimate(sc.eq.colName); d > 0 {
			n = (n + d - 1) / d
		}
	}
	if n < 1 {
		n = 1
	}
	return n
}

// conjuncts flattens top-level AND chains.
func conjuncts(e Expr) []Expr {
	if l, ok := e.(*Logical); ok && l.Op == "AND" {
		return append(conjuncts(l.Left), conjuncts(l.Right)...)
	}
	return []Expr{e}
}

// resolveCol resolves a column reference against the first `visible`
// bindings, mirroring executor.resolve.
func (p *Plan) resolveCol(c *ColRef, visible int) (int, int, error) {
	if c.Table != "" {
		name := strings.ToLower(c.Table)
		for b := 0; b < len(p.bindings); b++ {
			if p.bindings[b].name == name {
				ci := p.bindings[b].table.Schema.ColumnIndex(c.Column)
				if ci < 0 {
					return 0, 0, fmt.Errorf("sqlx: table %q has no column %q", c.Table, c.Column)
				}
				return b, ci, nil
			}
		}
		return 0, 0, fmt.Errorf("sqlx: unknown table binding %q", c.Table)
	}
	found, fi := -1, -1
	for b := 0; b < visible && b < len(p.bindings); b++ {
		if ci := p.bindings[b].table.Schema.ColumnIndex(c.Column); ci >= 0 {
			if found >= 0 {
				return 0, 0, fmt.Errorf("sqlx: ambiguous column %q", c.Column)
			}
			found, fi = b, ci
		}
	}
	if found < 0 {
		return 0, 0, fmt.Errorf("sqlx: unknown column %q", c.Column)
	}
	return found, fi, nil
}

// bindingsOf returns the sorted distinct binding ordinals an expression
// references.
func (p *Plan) bindingsOf(e Expr) ([]int, error) {
	seen := make(map[int]bool)
	var walk func(e Expr) error
	walk = func(e Expr) error {
		switch x := e.(type) {
		case *ColRef:
			b, _, err := p.resolveCol(x, len(p.bindings))
			if err != nil {
				return err
			}
			seen[b] = true
		case *Cmp:
			if err := walk(x.Left); err != nil {
				return err
			}
			return walk(x.Right)
		case *Logical:
			if err := walk(x.Left); err != nil {
				return err
			}
			return walk(x.Right)
		case *In:
			if err := walk(x.Left); err != nil {
				return err
			}
			for _, it := range x.Items {
				if err := walk(it); err != nil {
					return err
				}
			}
		case *IsNull:
			return walk(x.Left)
		}
		return nil
	}
	if err := walk(e); err != nil {
		return nil, err
	}
	out := make([]int, 0, len(seen))
	for b := range seen {
		out = append(out, b)
	}
	sort.Ints(out)
	return out, nil
}

// indexableEq recognizes `col = 'string'` / `col = <@Param>` (either
// operand order) on a text column of binding b. Only text columns
// qualify: string equality under compareValues matches map-key equality
// exactly, so an index probe and a compare-based scan return identical
// rows. Numeric equality coerces (2 = 2.0) and must stay on the compare
// path.
func (p *Plan) indexableEq(e Expr, b int, slots map[string]int) *indexEq {
	cmp, ok := e.(*Cmp)
	if !ok || cmp.Op != "=" {
		return nil
	}
	col, val := cmp.Left, cmp.Right
	if _, ok := col.(*ColRef); !ok {
		col, val = cmp.Right, cmp.Left
	}
	cr, ok := col.(*ColRef)
	if !ok {
		return nil
	}
	cb, ci, err := p.resolveCol(cr, len(p.bindings))
	if err != nil || cb != b {
		return nil
	}
	schema := &p.bindings[b].table.Schema
	if schema.Columns[ci].Type != kb.TextCol {
		return nil
	}
	var ref valueRef
	switch v := val.(type) {
	case *Lit:
		if _, isStr := v.Value.(string); !isStr {
			return nil
		}
		ref = valueRef{lit: v.Value, param: -1}
	case *Param:
		slot, ok := slots[v.Name]
		if !ok {
			return nil
		}
		ref = valueRef{param: slot}
	default:
		return nil
	}
	return &indexEq{col: ci, colName: strings.ToLower(schema.Columns[ci].Name), val: ref}
}

// compileEval compiles a scalar expression with ordinals resolved against
// the first `visible` bindings.
func (p *Plan) compileEval(e Expr, slots map[string]int, visible int) (evalFn, error) {
	switch x := e.(type) {
	case *Lit:
		v := x.Value
		return func(tuple, []kb.Value) (kb.Value, error) { return v, nil }, nil
	case *ColRef:
		b, ci, err := p.resolveCol(x, visible)
		if err != nil {
			return nil, err
		}
		name := p.bindings[b].name
		return func(tu tuple, _ []kb.Value) (kb.Value, error) {
			row := tu[b]
			if row == nil {
				return nil, fmt.Errorf("sqlx: binding %q not in scope", name)
			}
			return row[ci], nil
		}, nil
	case *Param:
		slot, ok := slots[x.Name]
		if !ok {
			return nil, fmt.Errorf("sqlx: unbound parameter <@%s>", x.Name)
		}
		return func(_ tuple, params []kb.Value) (kb.Value, error) {
			return params[slot], nil
		}, nil
	}
	return nil, fmt.Errorf("sqlx: cannot evaluate %T as a value", e)
}

// compilePred compiles a boolean expression, mirroring executor.evalBool
// semantics (NULL collapses to false, AND/OR short-circuit left-to-right).
func (p *Plan) compilePred(e Expr, slots map[string]int, visible int) (predFn, error) {
	switch x := e.(type) {
	case *Logical:
		l, err := p.compilePred(x.Left, slots, visible)
		if err != nil {
			return nil, err
		}
		r, err := p.compilePred(x.Right, slots, visible)
		if err != nil {
			return nil, err
		}
		if x.Op == "AND" {
			return func(tu tuple, params []kb.Value) (bool, error) {
				ok, err := l(tu, params)
				if err != nil || !ok {
					return false, err
				}
				return r(tu, params)
			}, nil
		}
		return func(tu tuple, params []kb.Value) (bool, error) {
			ok, err := l(tu, params)
			if err != nil || ok {
				return ok, err
			}
			return r(tu, params)
		}, nil
	case *Cmp:
		l, err := p.compileEval(x.Left, slots, visible)
		if err != nil {
			return nil, err
		}
		r, err := p.compileEval(x.Right, slots, visible)
		if err != nil {
			return nil, err
		}
		op := x.Op
		return func(tu tuple, params []kb.Value) (bool, error) {
			lv, err := l(tu, params)
			if err != nil {
				return false, err
			}
			rv, err := r(tu, params)
			if err != nil {
				return false, err
			}
			if lv == nil || rv == nil {
				return false, nil
			}
			if op == "LIKE" {
				ls, lok := lv.(string)
				rs, rok := rv.(string)
				if !lok || !rok {
					return false, fmt.Errorf("sqlx: LIKE requires strings")
				}
				return likeMatch(ls, rs), nil
			}
			c, err := compareValues(lv, rv)
			if err != nil {
				return false, err
			}
			switch op {
			case "=":
				return c == 0, nil
			case "!=":
				return c != 0, nil
			case "<":
				return c < 0, nil
			case "<=":
				return c <= 0, nil
			case ">":
				return c > 0, nil
			case ">=":
				return c >= 0, nil
			}
			return false, fmt.Errorf("sqlx: unknown operator %q", op)
		}, nil
	case *In:
		l, err := p.compileEval(x.Left, slots, visible)
		if err != nil {
			return nil, err
		}
		items := make([]evalFn, len(x.Items))
		for i, it := range x.Items {
			f, err := p.compileEval(it, slots, visible)
			if err != nil {
				return nil, err
			}
			items[i] = f
		}
		return func(tu tuple, params []kb.Value) (bool, error) {
			lv, err := l(tu, params)
			if err != nil {
				return false, err
			}
			if lv == nil {
				return false, nil
			}
			for _, item := range items {
				rv, err := item(tu, params)
				if err != nil {
					return false, err
				}
				if rv == nil {
					continue
				}
				c, err := compareValues(lv, rv)
				if err != nil {
					return false, err
				}
				if c == 0 {
					return true, nil
				}
			}
			return false, nil
		}, nil
	case *IsNull:
		l, err := p.compileEval(x.Left, slots, visible)
		if err != nil {
			return nil, err
		}
		not := x.Not
		return func(tu tuple, params []kb.Value) (bool, error) {
			lv, err := l(tu, params)
			if err != nil {
				return false, err
			}
			return (lv == nil) != not, nil
		}, nil
	}
	return nil, fmt.Errorf("sqlx: expression %T is not a predicate", e)
}

// compileProjection resolves the SELECT list, DISTINCT, ORDER BY and
// LIMIT once.
func (p *Plan) compileProjection(slots map[string]int) error {
	stmt := p.stmt
	for _, it := range stmt.Items {
		if it.Count {
			p.hasCount = true
		}
	}
	if p.hasCount {
		for _, it := range stmt.Items {
			if !it.Count {
				return fmt.Errorf("sqlx: cannot mix COUNT with plain columns (no GROUP BY support)")
			}
			name := it.Alias
			if name == "" {
				name = "count"
			}
			p.columns = append(p.columns, name)
			var expr evalFn
			if it.Expr != nil {
				var err error
				expr, err = p.compileEval(it.Expr, slots, len(p.bindings))
				if err != nil {
					return err
				}
			}
			p.counts = append(p.counts, planCount{expr: expr})
		}
		return nil
	}
	for _, it := range stmt.Items {
		if it.Star {
			for b := range p.bindings {
				for ci, c := range p.bindings[b].table.Schema.Columns {
					p.projs = append(p.projs, planProj{b, ci})
					p.columns = append(p.columns, c.Name)
				}
			}
			continue
		}
		b, ci, err := p.resolveCol(it.Expr, len(p.bindings))
		if err != nil {
			return err
		}
		p.projs = append(p.projs, planProj{b, ci})
		name := it.Alias
		if name == "" {
			name = it.Expr.Column
		}
		p.columns = append(p.columns, name)
	}
	for _, o := range stmt.OrderBy {
		idx := -1
		for j, c := range p.columns {
			if strings.EqualFold(c, o.Col.Column) {
				idx = j
				break
			}
		}
		if idx < 0 {
			return fmt.Errorf("sqlx: ORDER BY column %q must appear in the projection", o.Col.Column)
		}
		p.orderBy = append(p.orderBy, planOrder{idx: idx, desc: o.Desc})
	}
	return nil
}

// ---------------------------------------------------------------------------
// Execution
// ---------------------------------------------------------------------------

// tupleArena hands out fixed-width tuples from chunked backing arrays, so
// a join producing thousands of tuples costs a handful of allocations
// instead of one map per tuple.
type tupleArena struct {
	width int
	buf   []kb.Row
}

const arenaChunkTuples = 256

func newTupleArena(width int) *tupleArena { return &tupleArena{width: width} }

func (a *tupleArena) alloc() tuple {
	if len(a.buf)+a.width > cap(a.buf) {
		a.buf = make([]kb.Row, 0, a.width*arenaChunkTuples)
	}
	start := len(a.buf)
	a.buf = a.buf[:start+a.width]
	return tuple(a.buf[start : start+a.width : start+a.width])
}

func (a *tupleArena) clone(src tuple) tuple {
	t := a.alloc()
	copy(t, src)
	return t
}

// Exec binds the named string arguments into the plan's parameter slots
// and executes. It is the compiled equivalent of Template.Instantiate
// followed by Execute.
func (p *Plan) Exec(args map[string]string) (*Result, error) {
	params, err := p.bindArgs(args)
	if err != nil {
		return nil, err
	}
	return p.run(params)
}

func (p *Plan) bindArgs(args map[string]string) ([]kb.Value, error) {
	if len(p.params) == 0 && len(args) == 0 {
		return nil, nil
	}
	known := make(map[string]bool, len(p.params))
	for _, name := range p.params {
		known[name] = true
	}
	var unknown []string
	for name := range args {
		if !known[name] {
			unknown = append(unknown, name)
		}
	}
	if len(unknown) > 0 {
		sort.Strings(unknown)
		return nil, fmt.Errorf("sqlx: plan has no parameter %q", unknown[0])
	}
	params := make([]kb.Value, len(p.params))
	var missing []string
	for i, name := range p.params {
		v, ok := args[name]
		if !ok {
			missing = append(missing, name)
			continue
		}
		params[i] = v
	}
	if len(missing) > 0 {
		sort.Strings(missing)
		return nil, fmt.Errorf("sqlx: plan parameters not bound: %s", strings.Join(missing, ", "))
	}
	return params, nil
}

// scan produces the candidate rows of one binding with its pushdown
// predicates applied. Exactly one of rows and pos is non-nil: a bare
// equality probe returns pos, which aliases the stored posting list
// (read-only, zero allocations — see kb.Table.Lookup's aliasing
// contract) so indexed probes never materialize a defensive copy; every
// filtering path returns rows. Cold scans with a compiled vectorized
// program and a frozen ColumnSet run columnar; everything else runs the
// row-at-a-time filters.
func (p *Plan) scan(b int, params []kb.Value) (rows []kb.Row, pos []int, err error) {
	sc := &p.scans[b]
	t := p.bindings[b].table
	if sc.eq == nil && len(sc.filters) == 0 {
		return t.Rows, nil, nil
	}
	if sc.eq != nil {
		v := sc.eq.val.value(params)
		if v == nil {
			return nil, nil, nil
		}
		plist := t.Lookup(sc.eq.colName, v)
		if len(plist) == 0 {
			return nil, nil, nil
		}
		if len(sc.filters) == 0 {
			return nil, plist, nil
		}
		scratch := make(tuple, len(p.bindings))
		kept := make([]kb.Row, 0, len(plist))
		for _, i := range plist {
			row := t.Rows[i]
			scratch[b] = row
			ok, err := p.applyFilters(sc, scratch, params)
			if err != nil {
				return nil, nil, err
			}
			if ok {
				kept = append(kept, row)
			}
		}
		return kept, nil, nil
	}
	if sc.col != nil && sc.col.runnable(params) {
		if cs := t.ColumnSet(); cs != nil {
			return nil, runColumnar(cs, sc.col, params, !p.cfg.NoParallel), nil
		}
	}
	scratch := make(tuple, len(p.bindings))
	kept := make([]kb.Row, 0, len(t.Rows))
	for _, row := range t.Rows {
		scratch[b] = row
		ok, err := p.applyFilters(sc, scratch, params)
		if err != nil {
			return nil, nil, err
		}
		if ok {
			kept = append(kept, row)
		}
	}
	return kept, nil, nil
}

func (p *Plan) applyFilters(sc *planScan, tu tuple, params []kb.Value) (bool, error) {
	for _, f := range sc.filters {
		ok, err := f(tu, params)
		if err != nil || !ok {
			return false, err
		}
	}
	return true, nil
}

// scanMaterialized is scan with a bare probe's positions resolved to
// rows; for the nested-loop join, which wants a row slice either way.
func (p *Plan) scanMaterialized(b int, params []kb.Value) ([]kb.Row, error) {
	rows, pos, err := p.scan(b, params)
	if err != nil || pos == nil {
		return rows, err
	}
	t := p.bindings[b].table
	rows = make([]kb.Row, len(pos))
	for k, i := range pos {
		rows[k] = t.Rows[i]
	}
	return rows, nil
}

func (p *Plan) run(params []kb.Value) (*Result, error) {
	arena := newTupleArena(len(p.bindings))

	fromRows, fromPos, err := p.scan(0, params)
	if err != nil {
		return nil, err
	}
	tuples := make([]tuple, 0, len(fromRows)+len(fromPos))
	if fromPos != nil {
		// Bare index probe: iterate the posting list in place instead of
		// materializing a row slice first.
		t0 := p.bindings[0].table
		for _, i := range fromPos {
			t := arena.alloc()
			t[0] = t0.Rows[i]
			tuples = append(tuples, t)
		}
	} else {
		for _, row := range fromRows {
			t := arena.alloc()
			t[0] = row
			tuples = append(tuples, t)
		}
	}

	for ji := range p.joins {
		j := &p.joins[ji]
		if len(tuples) == 0 {
			tuples = nil
			break
		}
		if j.hash {
			joined, err := p.hashJoin(arena, tuples, j, params)
			if err != nil {
				return nil, err
			}
			tuples = joined
			continue
		}
		rows, err := p.scanMaterialized(j.newB, params)
		if err != nil {
			return nil, err
		}
		var out []tuple
		for _, tu := range tuples {
			for _, row := range rows {
				cand := arena.clone(tu)
				cand[j.newB] = row
				ok, err := j.on(cand, params)
				if err != nil {
					return nil, err
				}
				if ok {
					out = append(out, cand)
				}
			}
		}
		tuples = out
	}

	if len(p.residual) > 0 {
		kept := tuples[:0]
		for _, tu := range tuples {
			ok := true
			for _, f := range p.residual {
				match, err := f(tu, params)
				if err != nil {
					return nil, err
				}
				if !match {
					ok = false
					break
				}
			}
			if ok {
				kept = append(kept, tu)
			}
		}
		tuples = kept
	}
	return p.project(tuples, params)
}

// hashJoin joins tuples onto binding j.newB. When the new binding is
// unrestricted and the table already has a secondary index on the join
// column, the stored index is probed directly — no per-execution hash
// build at all.
func (p *Plan) hashJoin(arena *tupleArena, tuples []tuple, j *planJoin, params []kb.Value) ([]tuple, error) {
	t := p.bindings[j.newB].table
	sc := &p.scans[j.newB]
	if sc.eq == nil && len(sc.filters) == 0 {
		if idx, ok := t.IndexOn(j.newColName); ok {
			var out []tuple
			for _, tu := range tuples {
				v := tu[j.oldB][j.oldCol]
				if v == nil {
					continue
				}
				for _, pos := range idx[v] {
					cand := arena.clone(tu)
					cand[j.newB] = t.Rows[pos]
					out = append(out, cand)
				}
			}
			return out, nil
		}
	}
	rows, err := p.scanMaterialized(j.newB, params)
	if err != nil {
		return nil, err
	}
	// Semi-join restriction: when Prepare judged the probe side much
	// smaller than this scan, collect the probe side's keys first so the
	// build only hashes rows some tuple can actually reach. The probe
	// loop below is shared by both build modes, so the emitted tuples —
	// and their order — are identical either way.
	var keys map[kb.Value]struct{}
	if j.probeKeys {
		keys = make(map[kb.Value]struct{}, len(tuples))
		for _, tu := range tuples {
			if v := tu[j.oldB][j.oldCol]; v != nil {
				keys[v] = struct{}{}
			}
		}
	}
	idx := p.buildJoinHash(j, rows, keys)
	var out []tuple
	for _, tu := range tuples {
		v := tu[j.oldB][j.oldCol]
		if v == nil {
			continue
		}
		for _, row := range idx[v] {
			cand := arena.clone(tu)
			cand[j.newB] = row
			out = append(out, cand)
		}
	}
	return out, nil
}

// buildJoinHash builds the per-execution join index over the scanned
// rows, optionally restricted to probe-side keys. Above
// hashBuildParallelMin rows the build fans out over fixed partitions via
// par.DoChunks; per-partition maps land in their own slot and merge in
// partition order, so every posting list holds rows in the same
// ascending scan order the serial build produces, at any GOMAXPROCS.
func (p *Plan) buildJoinHash(j *planJoin, rows []kb.Row, keys map[kb.Value]struct{}) map[kb.Value][]kb.Row {
	n := len(rows)
	if n < hashBuildParallelMin || p.cfg.NoParallel {
		idx := make(map[kb.Value][]kb.Row, n)
		for _, row := range rows {
			v := row[j.newCol]
			if v == nil {
				continue // NULL never joins
			}
			if keys != nil {
				if _, ok := keys[v]; !ok {
					continue
				}
			}
			idx[v] = append(idx[v], row)
		}
		return idx
	}
	tasks := (n + colPartitionRows - 1) / colPartitionRows
	parts := make([]map[kb.Value][]kb.Row, tasks)
	par.DoChunks(n, colPartitionRows, func(task, start, end int) {
		m := make(map[kb.Value][]kb.Row, end-start)
		for _, row := range rows[start:end] {
			v := row[j.newCol]
			if v == nil {
				continue
			}
			if keys != nil {
				if _, ok := keys[v]; !ok {
					continue
				}
			}
			m[v] = append(m[v], row)
		}
		parts[task] = m
	})
	idx := parts[0]
	for _, m := range parts[1:] {
		for v, rs := range m {
			// Per-key posting lists are independent: each append's target
			// is keyed by the very map key being ranged, so key visit
			// order cannot reorder any list. Lists concatenate in fixed
			// chunk order (parts[0], parts[1], ...), and rows within a
			// chunk were appended in scan order — identical to the serial
			// build at any width (TestColumnarScanBitIdenticalAcrossWidths,
			// TestHashJoinBuildSidesIdentical).
			//ontolint:ignore nondeterm append target idx[v] is keyed by the ranged map key itself; per-key order is chunk-major scan order, independent of map iteration order
			idx[v] = append(idx[v], rs...)
		}
	}
	return idx
}

func (p *Plan) project(tuples []tuple, params []kb.Value) (*Result, error) {
	res := &Result{Columns: append([]string(nil), p.columns...)}

	if p.hasCount {
		row := make([]kb.Value, len(p.counts))
		for i, c := range p.counts {
			if c.expr == nil {
				row[i] = int64(len(tuples))
				continue
			}
			n := int64(0)
			for _, tu := range tuples {
				v, err := c.expr(tu, params)
				if err != nil {
					return nil, err
				}
				if v != nil {
					n++
				}
			}
			row[i] = n
		}
		res.Rows = [][]kb.Value{row}
		return res, nil
	}

	if len(tuples) > 0 {
		width := len(p.projs)
		backing := make([]kb.Value, len(tuples)*width)
		res.Rows = make([][]kb.Value, len(tuples))
		for i, tu := range tuples {
			row := backing[i*width : (i+1)*width : (i+1)*width]
			for pi, pr := range p.projs {
				row[pi] = tu[pr.b][pr.c]
			}
			res.Rows[i] = row
		}
	}

	if p.distinct {
		seen := make(map[string]bool, len(res.Rows))
		var kept [][]kb.Value
		for _, row := range res.Rows {
			key := rowKey(row)
			if !seen[key] {
				seen[key] = true
				kept = append(kept, row)
			}
		}
		res.Rows = kept
	}

	if len(p.orderBy) > 0 {
		var sortErr error
		sort.SliceStable(res.Rows, func(a, b int) bool {
			for _, o := range p.orderBy {
				va, vb := res.Rows[a][o.idx], res.Rows[b][o.idx]
				if va == nil && vb == nil {
					continue
				}
				if va == nil {
					return !o.desc
				}
				if vb == nil {
					return o.desc
				}
				c, err := compareValues(va, vb)
				if err != nil {
					sortErr = err
					return false
				}
				if c == 0 {
					continue
				}
				if o.desc {
					return c > 0
				}
				return c < 0
			}
			return false
		})
		if sortErr != nil {
			return nil, sortErr
		}
	}

	if p.limit >= 0 && len(res.Rows) > p.limit {
		res.Rows = res.Rows[:p.limit]
	}
	return res, nil
}
