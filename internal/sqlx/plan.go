package sqlx

import (
	"fmt"
	"sort"
	"strings"

	"ontoconv/internal/kb"
)

// This file is the compiled fast path of the per-turn serving loop: where
// Execute re-resolves names and materializes the full cross-join on every
// call, Prepare compiles a statement once — table bindings and column
// ordinals resolved up front, WHERE conjuncts classified into per-table
// pushdowns (index scans for equality on indexed text columns), equi-join
// keys fed to hash joins, and a residual post-join filter — and the
// resulting Plan executes with flat []kb.Row tuples allocated from a
// chunked arena instead of per-tuple maps.
//
// A Plan may contain <@Name> parameter markers: they compile to slots
// filled at Exec time, so one prepared template serves every turn without
// re-parsing or re-planning.

// tuple is one (partial) join result: the current row of each table
// binding, indexed by binding ordinal. Slots of not-yet-joined bindings
// are nil.
type tuple []kb.Row

// evalFn produces a scalar value for one tuple.
type evalFn func(tu tuple, params []kb.Value) (kb.Value, error)

// predFn evaluates a boolean predicate for one tuple.
type predFn func(tu tuple, params []kb.Value) (bool, error)

// valueRef is a compile-time reference to a comparison value: either a
// literal or a parameter slot filled at Exec time.
type valueRef struct {
	lit   kb.Value
	param int // slot ordinal, or -1 for a literal
}

func (v valueRef) value(params []kb.Value) kb.Value {
	if v.param >= 0 {
		return params[v.param]
	}
	return v.lit
}

// planBinding is one resolved table binding.
type planBinding struct {
	name  string // lowercased binding name
	table *kb.Table
}

// indexEq is an equality pushdown eligible for an index scan: column =
// string-literal/parameter on a text column. When the table has a
// secondary index on the column, Exec probes it; otherwise kb.Table.Lookup
// degrades to a single filtered sequential scan with identical semantics.
type indexEq struct {
	col     int // column ordinal
	colName string
	val     valueRef
}

// planScan is the access path of one binding: an optional equality probe
// plus residual single-table filters applied before the join.
type planScan struct {
	eq      *indexEq
	filters []predFn
}

// planJoin is one INNER JOIN step onto binding ordinal newB. When hash is
// true the ON clause is a single equality between an already-joined
// binding and the new one; otherwise on is evaluated per candidate pair.
type planJoin struct {
	newB int
	hash bool

	oldB, oldCol int
	newCol       int
	newColName   string // lowercased, for stored-index reuse

	on predFn
}

type planProj struct{ b, c int }

type planCount struct {
	expr evalFn // nil for COUNT(*)
}

type planOrder struct {
	idx  int
	desc bool
}

// TableColumn names one (table, column) pair a plan would like an index
// on; the bootstrapper uses these hints to build secondary indexes on
// exactly the columns the generated templates filter by.
type TableColumn struct {
	Table  string
	Column string
}

// Plan is a compiled, parameterizable query over one knowledge base.
// Plans are immutable after Prepare and safe for concurrent Exec.
type Plan struct {
	stmt     *SelectStmt
	params   []string
	bindings []planBinding
	scans    []planScan
	joins    []planJoin
	residual []predFn
	hints    []TableColumn

	hasCount bool
	counts   []planCount
	projs    []planProj
	columns  []string
	distinct bool
	orderBy  []planOrder
	limit    int
}

// Params returns the plan's parameter names in first-appearance order.
func (p *Plan) Params() []string { return append([]string(nil), p.params...) }

// String renders the compiled statement (canonical SQL text).
func (p *Plan) String() string { return p.stmt.String() }

// IndexHints lists the (table, column) pairs of every equality pushdown
// the plan compiled; indexing them turns those scans into probes.
func (p *Plan) IndexHints() []TableColumn { return append([]TableColumn(nil), p.hints...) }

// PrepareSQL parses and prepares src against the knowledge base.
func PrepareSQL(base *kb.KB, src string) (*Plan, error) {
	stmt, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return Prepare(base, stmt)
}

// Prepare compiles a parsed statement into an executable plan. The
// statement may contain <@Name> parameter markers; bind them at Exec time.
// The statement is not retained mutated — the plan shares its (immutable)
// expression nodes.
func Prepare(base *kb.KB, stmt *SelectStmt) (*Plan, error) {
	p := &Plan{stmt: stmt, params: stmt.Params(), distinct: stmt.Distinct, limit: stmt.Limit}
	slots := make(map[string]int, len(p.params))
	for i, name := range p.params {
		slots[name] = i
	}

	add := func(tr TableRef) error {
		t := base.Table(tr.Table)
		if t == nil {
			return fmt.Errorf("sqlx: unknown table %q", tr.Table)
		}
		b := strings.ToLower(tr.Binding())
		for _, existing := range p.bindings {
			if existing.name == b {
				return fmt.Errorf("sqlx: duplicate table binding %q", tr.Binding())
			}
		}
		p.bindings = append(p.bindings, planBinding{name: b, table: t})
		return nil
	}
	if err := add(stmt.From); err != nil {
		return nil, err
	}
	for _, j := range stmt.Joins {
		if err := add(j.Table); err != nil {
			return nil, err
		}
	}
	p.scans = make([]planScan, len(p.bindings))

	// Classify WHERE conjuncts: single-binding predicates are pushed to
	// that binding's scan (equality on a text column becomes an index
	// probe), everything else lands in the residual post-join filter.
	if stmt.Where != nil {
		for _, c := range conjuncts(stmt.Where) {
			refs, err := p.bindingsOf(c)
			if err != nil {
				return nil, err
			}
			if len(refs) == 1 {
				b := refs[0]
				if eq := p.indexableEq(c, b, slots); eq != nil {
					p.hints = append(p.hints, TableColumn{
						Table: p.bindings[b].table.Schema.Name, Column: eq.colName,
					})
					if p.scans[b].eq == nil {
						p.scans[b].eq = eq
						continue
					}
				}
				f, err := p.compilePred(c, slots, len(p.bindings))
				if err != nil {
					return nil, err
				}
				p.scans[b].filters = append(p.scans[b].filters, f)
				continue
			}
			f, err := p.compilePred(c, slots, len(p.bindings))
			if err != nil {
				return nil, err
			}
			p.residual = append(p.residual, f)
		}
	}

	// Joins: detect the hash-joinable single-equality shape the
	// interpreter uses, with the same visibility rules; everything else
	// becomes a compiled nested-loop predicate.
	for ji, j := range stmt.Joins {
		newB := ji + 1
		pj := planJoin{newB: newB}
		if cmp, ok := j.On.(*Cmp); ok && cmp.Op == "=" {
			lc, lok := cmp.Left.(*ColRef)
			rc, rok := cmp.Right.(*ColRef)
			if lok && rok {
				lb, li, lerr := p.resolveCol(lc, newB+1)
				rb, ri, rerr := p.resolveCol(rc, newB+1)
				if lerr == nil && rerr == nil {
					switch {
					case lb == newB && rb != newB:
						pj.hash, pj.oldB, pj.oldCol, pj.newCol = true, rb, ri, li
					case rb == newB && lb != newB:
						pj.hash, pj.oldB, pj.oldCol, pj.newCol = true, lb, li, ri
					}
				}
			}
		}
		if pj.hash {
			pj.newColName = strings.ToLower(p.bindings[newB].table.Schema.Columns[pj.newCol].Name)
		} else {
			// The interpreter's nested loop resolves ON references
			// against every binding and fails at runtime when the slot
			// is absent; compile with full visibility to match.
			on, err := p.compilePred(j.On, slots, len(p.bindings))
			if err != nil {
				return nil, err
			}
			pj.on = on
		}
		p.joins = append(p.joins, pj)
	}

	if err := p.compileProjection(slots); err != nil {
		return nil, err
	}
	return p, nil
}

// conjuncts flattens top-level AND chains.
func conjuncts(e Expr) []Expr {
	if l, ok := e.(*Logical); ok && l.Op == "AND" {
		return append(conjuncts(l.Left), conjuncts(l.Right)...)
	}
	return []Expr{e}
}

// resolveCol resolves a column reference against the first `visible`
// bindings, mirroring executor.resolve.
func (p *Plan) resolveCol(c *ColRef, visible int) (int, int, error) {
	if c.Table != "" {
		name := strings.ToLower(c.Table)
		for b := 0; b < len(p.bindings); b++ {
			if p.bindings[b].name == name {
				ci := p.bindings[b].table.Schema.ColumnIndex(c.Column)
				if ci < 0 {
					return 0, 0, fmt.Errorf("sqlx: table %q has no column %q", c.Table, c.Column)
				}
				return b, ci, nil
			}
		}
		return 0, 0, fmt.Errorf("sqlx: unknown table binding %q", c.Table)
	}
	found, fi := -1, -1
	for b := 0; b < visible && b < len(p.bindings); b++ {
		if ci := p.bindings[b].table.Schema.ColumnIndex(c.Column); ci >= 0 {
			if found >= 0 {
				return 0, 0, fmt.Errorf("sqlx: ambiguous column %q", c.Column)
			}
			found, fi = b, ci
		}
	}
	if found < 0 {
		return 0, 0, fmt.Errorf("sqlx: unknown column %q", c.Column)
	}
	return found, fi, nil
}

// bindingsOf returns the sorted distinct binding ordinals an expression
// references.
func (p *Plan) bindingsOf(e Expr) ([]int, error) {
	seen := make(map[int]bool)
	var walk func(e Expr) error
	walk = func(e Expr) error {
		switch x := e.(type) {
		case *ColRef:
			b, _, err := p.resolveCol(x, len(p.bindings))
			if err != nil {
				return err
			}
			seen[b] = true
		case *Cmp:
			if err := walk(x.Left); err != nil {
				return err
			}
			return walk(x.Right)
		case *Logical:
			if err := walk(x.Left); err != nil {
				return err
			}
			return walk(x.Right)
		case *In:
			if err := walk(x.Left); err != nil {
				return err
			}
			for _, it := range x.Items {
				if err := walk(it); err != nil {
					return err
				}
			}
		case *IsNull:
			return walk(x.Left)
		}
		return nil
	}
	if err := walk(e); err != nil {
		return nil, err
	}
	out := make([]int, 0, len(seen))
	for b := range seen {
		out = append(out, b)
	}
	sort.Ints(out)
	return out, nil
}

// indexableEq recognizes `col = 'string'` / `col = <@Param>` (either
// operand order) on a text column of binding b. Only text columns
// qualify: string equality under compareValues matches map-key equality
// exactly, so an index probe and a compare-based scan return identical
// rows. Numeric equality coerces (2 = 2.0) and must stay on the compare
// path.
func (p *Plan) indexableEq(e Expr, b int, slots map[string]int) *indexEq {
	cmp, ok := e.(*Cmp)
	if !ok || cmp.Op != "=" {
		return nil
	}
	col, val := cmp.Left, cmp.Right
	if _, ok := col.(*ColRef); !ok {
		col, val = cmp.Right, cmp.Left
	}
	cr, ok := col.(*ColRef)
	if !ok {
		return nil
	}
	cb, ci, err := p.resolveCol(cr, len(p.bindings))
	if err != nil || cb != b {
		return nil
	}
	schema := &p.bindings[b].table.Schema
	if schema.Columns[ci].Type != kb.TextCol {
		return nil
	}
	var ref valueRef
	switch v := val.(type) {
	case *Lit:
		if _, isStr := v.Value.(string); !isStr {
			return nil
		}
		ref = valueRef{lit: v.Value, param: -1}
	case *Param:
		slot, ok := slots[v.Name]
		if !ok {
			return nil
		}
		ref = valueRef{param: slot}
	default:
		return nil
	}
	return &indexEq{col: ci, colName: strings.ToLower(schema.Columns[ci].Name), val: ref}
}

// compileEval compiles a scalar expression with ordinals resolved against
// the first `visible` bindings.
func (p *Plan) compileEval(e Expr, slots map[string]int, visible int) (evalFn, error) {
	switch x := e.(type) {
	case *Lit:
		v := x.Value
		return func(tuple, []kb.Value) (kb.Value, error) { return v, nil }, nil
	case *ColRef:
		b, ci, err := p.resolveCol(x, visible)
		if err != nil {
			return nil, err
		}
		name := p.bindings[b].name
		return func(tu tuple, _ []kb.Value) (kb.Value, error) {
			row := tu[b]
			if row == nil {
				return nil, fmt.Errorf("sqlx: binding %q not in scope", name)
			}
			return row[ci], nil
		}, nil
	case *Param:
		slot, ok := slots[x.Name]
		if !ok {
			return nil, fmt.Errorf("sqlx: unbound parameter <@%s>", x.Name)
		}
		return func(_ tuple, params []kb.Value) (kb.Value, error) {
			return params[slot], nil
		}, nil
	}
	return nil, fmt.Errorf("sqlx: cannot evaluate %T as a value", e)
}

// compilePred compiles a boolean expression, mirroring executor.evalBool
// semantics (NULL collapses to false, AND/OR short-circuit left-to-right).
func (p *Plan) compilePred(e Expr, slots map[string]int, visible int) (predFn, error) {
	switch x := e.(type) {
	case *Logical:
		l, err := p.compilePred(x.Left, slots, visible)
		if err != nil {
			return nil, err
		}
		r, err := p.compilePred(x.Right, slots, visible)
		if err != nil {
			return nil, err
		}
		if x.Op == "AND" {
			return func(tu tuple, params []kb.Value) (bool, error) {
				ok, err := l(tu, params)
				if err != nil || !ok {
					return false, err
				}
				return r(tu, params)
			}, nil
		}
		return func(tu tuple, params []kb.Value) (bool, error) {
			ok, err := l(tu, params)
			if err != nil || ok {
				return ok, err
			}
			return r(tu, params)
		}, nil
	case *Cmp:
		l, err := p.compileEval(x.Left, slots, visible)
		if err != nil {
			return nil, err
		}
		r, err := p.compileEval(x.Right, slots, visible)
		if err != nil {
			return nil, err
		}
		op := x.Op
		return func(tu tuple, params []kb.Value) (bool, error) {
			lv, err := l(tu, params)
			if err != nil {
				return false, err
			}
			rv, err := r(tu, params)
			if err != nil {
				return false, err
			}
			if lv == nil || rv == nil {
				return false, nil
			}
			if op == "LIKE" {
				ls, lok := lv.(string)
				rs, rok := rv.(string)
				if !lok || !rok {
					return false, fmt.Errorf("sqlx: LIKE requires strings")
				}
				return likeMatch(ls, rs), nil
			}
			c, err := compareValues(lv, rv)
			if err != nil {
				return false, err
			}
			switch op {
			case "=":
				return c == 0, nil
			case "!=":
				return c != 0, nil
			case "<":
				return c < 0, nil
			case "<=":
				return c <= 0, nil
			case ">":
				return c > 0, nil
			case ">=":
				return c >= 0, nil
			}
			return false, fmt.Errorf("sqlx: unknown operator %q", op)
		}, nil
	case *In:
		l, err := p.compileEval(x.Left, slots, visible)
		if err != nil {
			return nil, err
		}
		items := make([]evalFn, len(x.Items))
		for i, it := range x.Items {
			f, err := p.compileEval(it, slots, visible)
			if err != nil {
				return nil, err
			}
			items[i] = f
		}
		return func(tu tuple, params []kb.Value) (bool, error) {
			lv, err := l(tu, params)
			if err != nil {
				return false, err
			}
			if lv == nil {
				return false, nil
			}
			for _, item := range items {
				rv, err := item(tu, params)
				if err != nil {
					return false, err
				}
				if rv == nil {
					continue
				}
				c, err := compareValues(lv, rv)
				if err != nil {
					return false, err
				}
				if c == 0 {
					return true, nil
				}
			}
			return false, nil
		}, nil
	case *IsNull:
		l, err := p.compileEval(x.Left, slots, visible)
		if err != nil {
			return nil, err
		}
		not := x.Not
		return func(tu tuple, params []kb.Value) (bool, error) {
			lv, err := l(tu, params)
			if err != nil {
				return false, err
			}
			return (lv == nil) != not, nil
		}, nil
	}
	return nil, fmt.Errorf("sqlx: expression %T is not a predicate", e)
}

// compileProjection resolves the SELECT list, DISTINCT, ORDER BY and
// LIMIT once.
func (p *Plan) compileProjection(slots map[string]int) error {
	stmt := p.stmt
	for _, it := range stmt.Items {
		if it.Count {
			p.hasCount = true
		}
	}
	if p.hasCount {
		for _, it := range stmt.Items {
			if !it.Count {
				return fmt.Errorf("sqlx: cannot mix COUNT with plain columns (no GROUP BY support)")
			}
			name := it.Alias
			if name == "" {
				name = "count"
			}
			p.columns = append(p.columns, name)
			var expr evalFn
			if it.Expr != nil {
				var err error
				expr, err = p.compileEval(it.Expr, slots, len(p.bindings))
				if err != nil {
					return err
				}
			}
			p.counts = append(p.counts, planCount{expr: expr})
		}
		return nil
	}
	for _, it := range stmt.Items {
		if it.Star {
			for b := range p.bindings {
				for ci, c := range p.bindings[b].table.Schema.Columns {
					p.projs = append(p.projs, planProj{b, ci})
					p.columns = append(p.columns, c.Name)
				}
			}
			continue
		}
		b, ci, err := p.resolveCol(it.Expr, len(p.bindings))
		if err != nil {
			return err
		}
		p.projs = append(p.projs, planProj{b, ci})
		name := it.Alias
		if name == "" {
			name = it.Expr.Column
		}
		p.columns = append(p.columns, name)
	}
	for _, o := range stmt.OrderBy {
		idx := -1
		for j, c := range p.columns {
			if strings.EqualFold(c, o.Col.Column) {
				idx = j
				break
			}
		}
		if idx < 0 {
			return fmt.Errorf("sqlx: ORDER BY column %q must appear in the projection", o.Col.Column)
		}
		p.orderBy = append(p.orderBy, planOrder{idx: idx, desc: o.Desc})
	}
	return nil
}

// ---------------------------------------------------------------------------
// Execution
// ---------------------------------------------------------------------------

// tupleArena hands out fixed-width tuples from chunked backing arrays, so
// a join producing thousands of tuples costs a handful of allocations
// instead of one map per tuple.
type tupleArena struct {
	width int
	buf   []kb.Row
}

const arenaChunkTuples = 256

func newTupleArena(width int) *tupleArena { return &tupleArena{width: width} }

func (a *tupleArena) alloc() tuple {
	if len(a.buf)+a.width > cap(a.buf) {
		a.buf = make([]kb.Row, 0, a.width*arenaChunkTuples)
	}
	start := len(a.buf)
	a.buf = a.buf[:start+a.width]
	return tuple(a.buf[start : start+a.width : start+a.width])
}

func (a *tupleArena) clone(src tuple) tuple {
	t := a.alloc()
	copy(t, src)
	return t
}

// Exec binds the named string arguments into the plan's parameter slots
// and executes. It is the compiled equivalent of Template.Instantiate
// followed by Execute.
func (p *Plan) Exec(args map[string]string) (*Result, error) {
	params, err := p.bindArgs(args)
	if err != nil {
		return nil, err
	}
	return p.run(params)
}

func (p *Plan) bindArgs(args map[string]string) ([]kb.Value, error) {
	if len(p.params) == 0 && len(args) == 0 {
		return nil, nil
	}
	known := make(map[string]bool, len(p.params))
	for _, name := range p.params {
		known[name] = true
	}
	var unknown []string
	for name := range args {
		if !known[name] {
			unknown = append(unknown, name)
		}
	}
	if len(unknown) > 0 {
		sort.Strings(unknown)
		return nil, fmt.Errorf("sqlx: plan has no parameter %q", unknown[0])
	}
	params := make([]kb.Value, len(p.params))
	var missing []string
	for i, name := range p.params {
		v, ok := args[name]
		if !ok {
			missing = append(missing, name)
			continue
		}
		params[i] = v
	}
	if len(missing) > 0 {
		sort.Strings(missing)
		return nil, fmt.Errorf("sqlx: plan parameters not bound: %s", strings.Join(missing, ", "))
	}
	return params, nil
}

// scanRows produces the candidate rows of one binding with its pushdown
// predicates applied: an index/Lookup probe for the equality, then the
// residual single-table filters.
func (p *Plan) scanRows(b int, params []kb.Value) ([]kb.Row, error) {
	sc := &p.scans[b]
	t := p.bindings[b].table
	if sc.eq == nil && len(sc.filters) == 0 {
		return t.Rows, nil
	}
	var rows []kb.Row
	if sc.eq != nil {
		v := sc.eq.val.value(params)
		if v == nil {
			return nil, nil
		}
		pos := t.Lookup(sc.eq.colName, v)
		if len(pos) == 0 {
			return nil, nil
		}
		rows = make([]kb.Row, 0, len(pos))
		for _, i := range pos {
			rows = append(rows, t.Rows[i])
		}
	} else {
		rows = t.Rows
	}
	if len(sc.filters) == 0 {
		return rows, nil
	}
	scratch := make(tuple, len(p.bindings))
	kept := make([]kb.Row, 0, len(rows))
	for _, row := range rows {
		scratch[b] = row
		ok := true
		for _, f := range sc.filters {
			match, err := f(scratch, params)
			if err != nil {
				return nil, err
			}
			if !match {
				ok = false
				break
			}
		}
		if ok {
			kept = append(kept, row)
		}
	}
	return kept, nil
}

func (p *Plan) run(params []kb.Value) (*Result, error) {
	arena := newTupleArena(len(p.bindings))

	fromRows, err := p.scanRows(0, params)
	if err != nil {
		return nil, err
	}
	tuples := make([]tuple, 0, len(fromRows))
	for _, row := range fromRows {
		t := arena.alloc()
		t[0] = row
		tuples = append(tuples, t)
	}

	for ji := range p.joins {
		j := &p.joins[ji]
		if len(tuples) == 0 {
			tuples = nil
			break
		}
		if j.hash {
			joined, err := p.hashJoin(arena, tuples, j, params)
			if err != nil {
				return nil, err
			}
			tuples = joined
			continue
		}
		rows, err := p.scanRows(j.newB, params)
		if err != nil {
			return nil, err
		}
		var out []tuple
		for _, tu := range tuples {
			for _, row := range rows {
				cand := arena.clone(tu)
				cand[j.newB] = row
				ok, err := j.on(cand, params)
				if err != nil {
					return nil, err
				}
				if ok {
					out = append(out, cand)
				}
			}
		}
		tuples = out
	}

	if len(p.residual) > 0 {
		kept := tuples[:0]
		for _, tu := range tuples {
			ok := true
			for _, f := range p.residual {
				match, err := f(tu, params)
				if err != nil {
					return nil, err
				}
				if !match {
					ok = false
					break
				}
			}
			if ok {
				kept = append(kept, tu)
			}
		}
		tuples = kept
	}
	return p.project(tuples, params)
}

// hashJoin joins tuples onto binding j.newB. When the new binding is
// unrestricted and the table already has a secondary index on the join
// column, the stored index is probed directly — no per-execution hash
// build at all.
func (p *Plan) hashJoin(arena *tupleArena, tuples []tuple, j *planJoin, params []kb.Value) ([]tuple, error) {
	t := p.bindings[j.newB].table
	sc := &p.scans[j.newB]
	if sc.eq == nil && len(sc.filters) == 0 {
		if idx, ok := t.IndexOn(j.newColName); ok {
			var out []tuple
			for _, tu := range tuples {
				v := tu[j.oldB][j.oldCol]
				if v == nil {
					continue
				}
				for _, pos := range idx[v] {
					cand := arena.clone(tu)
					cand[j.newB] = t.Rows[pos]
					out = append(out, cand)
				}
			}
			return out, nil
		}
	}
	rows, err := p.scanRows(j.newB, params)
	if err != nil {
		return nil, err
	}
	idx := make(map[kb.Value][]kb.Row, len(rows))
	for _, row := range rows {
		v := row[j.newCol]
		if v == nil {
			continue // NULL never joins
		}
		idx[v] = append(idx[v], row)
	}
	var out []tuple
	for _, tu := range tuples {
		v := tu[j.oldB][j.oldCol]
		if v == nil {
			continue
		}
		for _, row := range idx[v] {
			cand := arena.clone(tu)
			cand[j.newB] = row
			out = append(out, cand)
		}
	}
	return out, nil
}

func (p *Plan) project(tuples []tuple, params []kb.Value) (*Result, error) {
	res := &Result{Columns: append([]string(nil), p.columns...)}

	if p.hasCount {
		row := make([]kb.Value, len(p.counts))
		for i, c := range p.counts {
			if c.expr == nil {
				row[i] = int64(len(tuples))
				continue
			}
			n := int64(0)
			for _, tu := range tuples {
				v, err := c.expr(tu, params)
				if err != nil {
					return nil, err
				}
				if v != nil {
					n++
				}
			}
			row[i] = n
		}
		res.Rows = [][]kb.Value{row}
		return res, nil
	}

	if len(tuples) > 0 {
		width := len(p.projs)
		backing := make([]kb.Value, len(tuples)*width)
		res.Rows = make([][]kb.Value, len(tuples))
		for i, tu := range tuples {
			row := backing[i*width : (i+1)*width : (i+1)*width]
			for pi, pr := range p.projs {
				row[pi] = tu[pr.b][pr.c]
			}
			res.Rows[i] = row
		}
	}

	if p.distinct {
		seen := make(map[string]bool, len(res.Rows))
		var kept [][]kb.Value
		for _, row := range res.Rows {
			key := rowKey(row)
			if !seen[key] {
				seen[key] = true
				kept = append(kept, row)
			}
		}
		res.Rows = kept
	}

	if len(p.orderBy) > 0 {
		var sortErr error
		sort.SliceStable(res.Rows, func(a, b int) bool {
			for _, o := range p.orderBy {
				va, vb := res.Rows[a][o.idx], res.Rows[b][o.idx]
				if va == nil && vb == nil {
					continue
				}
				if va == nil {
					return !o.desc
				}
				if vb == nil {
					return o.desc
				}
				c, err := compareValues(va, vb)
				if err != nil {
					sortErr = err
					return false
				}
				if c == 0 {
					continue
				}
				if o.desc {
					return c > 0
				}
				return c < 0
			}
			return false
		})
		if sortErr != nil {
			return nil, sortErr
		}
	}

	if p.limit >= 0 && len(res.Rows) > p.limit {
		res.Rows = res.Rows[:p.limit]
	}
	return res, nil
}
