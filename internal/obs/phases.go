package obs

import (
	"fmt"
	"strings"
	"sync"
	"time"
)

// Count is one named count attached to a bootstrap phase ("intents=42").
type Count struct {
	Name string `json:"name"`
	N    int    `json:"n"`
}

// C builds a Count.
func C(name string, n int) Count { return Count{Name: name, N: n} }

// Phase is one timed step of the offline bootstrap.
type Phase struct {
	Name     string        `json:"name"`
	Duration time.Duration `json:"duration_ns"`
	Counts   []Count       `json:"counts,omitempty"`
}

// PhaseLog collects per-phase durations and artifact counts of the offline
// pipeline (Figure 1a): ontology discovery passes, concept analysis,
// pattern extraction, example generation, template generation, entity
// extraction. A nil *PhaseLog is a valid no-op sink, so the pipeline can
// call it unconditionally.
type PhaseLog struct {
	mu     sync.Mutex
	phases []Phase
}

// NewPhaseLog returns an empty phase log.
func NewPhaseLog() *PhaseLog { return &PhaseLog{} }

// Phase starts timing a named phase; the returned func stops the clock and
// records the phase with the given counts. Safe on a nil log.
func (p *PhaseLog) Phase(name string) func(counts ...Count) {
	if p == nil {
		return func(...Count) {}
	}
	start := time.Now()
	return func(counts ...Count) {
		ph := Phase{Name: name, Duration: time.Since(start), Counts: counts}
		p.mu.Lock()
		p.phases = append(p.phases, ph)
		p.mu.Unlock()
	}
}

// Phases returns a copy of the recorded phases. Safe on a nil log.
func (p *PhaseLog) Phases() []Phase {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]Phase(nil), p.phases...)
}

// Total sums all phase durations. Safe on a nil log.
func (p *PhaseLog) Total() time.Duration {
	var total time.Duration
	for _, ph := range p.Phases() {
		total += ph.Duration
	}
	return total
}

// Summary renders an aligned per-phase timing table with counts, for
// cmd/bootstrap's structured summary. Safe on a nil log.
func (p *PhaseLog) Summary() string {
	phases := p.Phases()
	if len(phases) == 0 {
		return ""
	}
	width := 0
	for _, ph := range phases {
		if len(ph.Name) > width {
			width = len(ph.Name)
		}
	}
	var b strings.Builder
	b.WriteString("bootstrap phases:\n")
	for _, ph := range phases {
		fmt.Fprintf(&b, "  %-*s  %10s", width, ph.Name, ph.Duration.Round(time.Microsecond))
		for _, c := range ph.Counts {
			fmt.Fprintf(&b, "  %s=%d", c.Name, c.N)
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "  %-*s  %10s\n", width, "total", p.Total().Round(time.Microsecond))
	return b.String()
}
