package obs

import (
	"sort"
	"sync"
	"testing"
	"time"
)

func mkTrace(turn int) *Trace {
	tr := NewTrace(turn)
	sp := tr.StartSpan("kb_execute")
	sp.AttrInt("rows", turn)
	sp.End()
	tr.Finish()
	return tr
}

func TestSlowTracesTopK(t *testing.T) {
	s := NewSlowTraces(3)
	s.SetGeneration("g1")
	durations := []time.Duration{5, 1, 9, 3, 7, 2, 8} // ms
	for i, d := range durations {
		s.Offer("g1", d*time.Millisecond, mkTrace(i))
	}
	snap := s.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("retained %d, want 3", len(snap))
	}
	want := []time.Duration{9, 8, 7}
	for i, e := range snap {
		if e.Duration != want[i]*time.Millisecond {
			t.Fatalf("slot %d duration %v, want %v ms", i, e.Duration, want[i])
		}
		if e.Generation != "g1" {
			t.Fatalf("slot %d generation %q", i, e.Generation)
		}
		if len(e.Trace.Spans) != 1 || e.Trace.Spans[0].Name != "kb_execute" {
			t.Fatalf("slot %d lost its per-stage spans: %+v", i, e.Trace.Spans)
		}
	}
	// A fast turn must be rejected on the lock-free path once full.
	if s.Offer("g1", time.Millisecond, mkTrace(99)) {
		t.Fatal("fast turn admitted into a full reservoir of slower ones")
	}
}

func TestSlowTracesGenerationPurge(t *testing.T) {
	s := NewSlowTraces(4)
	s.SetGeneration("old")
	for i := 1; i <= 4; i++ {
		s.Offer("old", time.Duration(i)*time.Second, mkTrace(i))
	}
	// Swap generations: old traces purged, stale offers rejected, new
	// ones admitted even though they are faster than the purged ones.
	s.SetGeneration("new")
	if got := s.Snapshot(); len(got) != 0 {
		t.Fatalf("purge left %d traces from the dropped generation", len(got))
	}
	if s.Offer("old", time.Hour, mkTrace(9)) {
		t.Fatal("offer from a dropped generation was retained")
	}
	if !s.Offer("new", time.Millisecond, mkTrace(10)) {
		t.Fatal("offer from the live generation rejected after purge")
	}
	snap := s.Snapshot()
	if len(snap) != 1 || snap[0].Generation != "new" {
		t.Fatalf("snapshot after swap: %+v", snap)
	}
	// Re-setting the same generation keeps everything.
	s.SetGeneration("new")
	if len(s.Snapshot()) != 1 {
		t.Fatal("re-setting the live generation dropped traces")
	}
}

// TestSlowTracesConcurrentExact aims -race at the reservoir and checks
// the strong property the /trace/slow endpoint depends on: under
// concurrent offers with distinct durations, the reservoir ends up with
// exactly the K largest.
func TestSlowTracesConcurrentExact(t *testing.T) {
	const k, workers, per = 8, 8, 500
	s := NewSlowTraces(k)
	s.SetGeneration("live")
	var wg sync.WaitGroup
	all := make([]time.Duration, 0, workers*per)
	for w := 0; w < workers; w++ {
		for i := 0; i < per; i++ {
			// distinct durations, interleaved so every worker holds some
			// of the global top-K
			all = append(all, time.Duration(w+i*workers+1)*time.Microsecond)
		}
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				s.Offer("live", all[w*per+i], mkTrace(i))
			}
		}(w)
	}
	wg.Wait()
	snap := s.Snapshot()
	if len(snap) != k {
		t.Fatalf("retained %d, want %d", len(snap), k)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] > all[j] })
	for i, e := range snap {
		if e.Duration != all[i] {
			t.Fatalf("rank %d: got %v, want %v", i, e.Duration, all[i])
		}
	}
}

// TestSlowTracesLateAnnotation checks the handler pattern: the request ID
// is bound to the trace after the turn (and the offer) completed, and the
// snapshot still carries it.
func TestSlowTracesLateAnnotation(t *testing.T) {
	s := NewSlowTraces(2)
	s.SetGeneration("g")
	tr := mkTrace(1)
	s.Offer("g", time.Second, tr)
	tr.Annotate("request_id", "abc-123")
	snap := s.Snapshot()
	if len(snap) != 1 {
		t.Fatal("trace lost")
	}
	found := false
	for _, a := range snap[0].Trace.Attrs {
		if a.Key == "request_id" && a.Value == "abc-123" {
			found = true
		}
	}
	if !found {
		t.Fatalf("post-offer annotation missing: %+v", snap[0].Trace.Attrs)
	}
}
