package obs

import (
	"strconv"
	"strings"
	"sync"
	"testing"
)

// TestHistogramExpositionGolden pins the Prometheus text rendering of a
// fixed-bucket histogram byte-for-byte: cumulative bucket counts, the
// +Inf terminal bucket, and _sum/_count lines.
func TestHistogramExpositionGolden(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("turn_seconds", "Turn latency.", []float64{0.005, 0.05, 0.5})
	for _, v := range []float64{0.001, 0.004, 0.005, 0.02, 0.4, 0.7, 3} {
		h.Observe(v)
	}
	want := strings.Join([]string{
		"# HELP turn_seconds Turn latency.",
		"# TYPE turn_seconds histogram",
		`turn_seconds_bucket{le="0.005"} 3`,
		`turn_seconds_bucket{le="0.05"} 4`,
		`turn_seconds_bucket{le="0.5"} 5`,
		`turn_seconds_bucket{le="+Inf"} 7`,
		"turn_seconds_sum 4.13",
		"turn_seconds_count 7",
		"",
	}, "\n")
	if got := expose(reg); got != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestHistogramExpositionLabeledGolden does the same through a labeled
// vec, where the le label joins the family labels.
func TestHistogramExpositionLabeledGolden(t *testing.T) {
	reg := NewRegistry()
	v := reg.HistogramVec("stage_seconds", "Stage latency.", []float64{0.01, 0.1}, "stage")
	v.With("kb_execute").Observe(0.003)
	v.With("kb_execute").Observe(0.05)
	v.With("kb_execute").Observe(2)
	want := strings.Join([]string{
		"# HELP stage_seconds Stage latency.",
		"# TYPE stage_seconds histogram",
		`stage_seconds_bucket{stage="kb_execute",le="0.01"} 1`,
		`stage_seconds_bucket{stage="kb_execute",le="0.1"} 2`,
		`stage_seconds_bucket{stage="kb_execute",le="+Inf"} 3`,
		`stage_seconds_sum{stage="kb_execute"} 2.053`,
		`stage_seconds_count{stage="kb_execute"} 3`,
		"",
	}, "\n")
	if got := expose(reg); got != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// parseHistExposition extracts bucket counts (in emission order), the
// count, and the sum for one histogram family from exposition text.
func parseHistExposition(t *testing.T, text, name string) (buckets []uint64, count uint64, sum float64) {
	t.Helper()
	for _, line := range strings.Split(text, "\n") {
		switch {
		case strings.HasPrefix(line, name+"_bucket"):
			f := strings.Fields(line)
			n, err := strconv.ParseUint(f[len(f)-1], 10, 64)
			if err != nil {
				t.Fatalf("bad bucket line %q: %v", line, err)
			}
			buckets = append(buckets, n)
		case strings.HasPrefix(line, name+"_count"):
			f := strings.Fields(line)
			n, err := strconv.ParseUint(f[len(f)-1], 10, 64)
			if err != nil {
				t.Fatalf("bad count line %q: %v", line, err)
			}
			count = n
		case strings.HasPrefix(line, name+"_sum"):
			f := strings.Fields(line)
			v, err := strconv.ParseFloat(f[len(f)-1], 64)
			if err != nil {
				t.Fatalf("bad sum line %q: %v", line, err)
			}
			sum = v
		}
	}
	return buckets, count, sum
}

// TestHistogramExpositionConcurrent scrapes the exposition while
// observers hammer the histogram (run under -race in CI) and checks every
// scrape is internally consistent — cumulative buckets are non-decreasing
// and the +Inf bucket never exceeds a later-read _count — then verifies
// the final totals exactly.
func TestHistogramExpositionConcurrent(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("hammer_seconds", "hammered", []float64{0.01, 0.1, 1})
	const workers, per = 8, 2000
	values := []float64{0.005, 0.05, 0.5, 5} // one per bucket incl. +Inf

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(values[(w+i)%len(values)])
			}
		}(w)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	for scraping := true; scraping; {
		select {
		case <-done:
			scraping = false
		default:
		}
		buckets, count, _ := parseHistExposition(t, expose(reg), "hammer_seconds")
		if len(buckets) != 4 {
			t.Fatalf("bucket lines = %d, want 4", len(buckets))
		}
		// Monotonicity holds among the finite buckets (one cumulative
		// walk); the +Inf line is a separate Count() read that can
		// transiently lag an in-flight Observe, so it is checked against
		// _count (also Count(), read later) instead.
		for i := 1; i < len(buckets)-1; i++ {
			if buckets[i] < buckets[i-1] {
				t.Fatalf("cumulative buckets decreased: %v", buckets)
			}
		}
		// +Inf is rendered from Count() read after the per-bucket loads,
		// so it can only be ≥ the cumulative total seen at that point.
		if buckets[len(buckets)-1] > count {
			t.Fatalf("+Inf bucket %d exceeds _count %d", buckets[len(buckets)-1], count)
		}
	}

	buckets, count, sum := parseHistExposition(t, expose(reg), "hammer_seconds")
	total := uint64(workers * per)
	if count != total {
		t.Fatalf("_count = %d, want %d", count, total)
	}
	if buckets[len(buckets)-1] != total {
		t.Fatalf(`le="+Inf" = %d, want %d`, buckets[len(buckets)-1], total)
	}
	wantPer := total / uint64(len(values))
	wantCum := []uint64{wantPer, 2 * wantPer, 3 * wantPer, total}
	for i := range buckets {
		if buckets[i] != wantCum[i] {
			t.Fatalf("cumulative buckets %v, want %v", buckets, wantCum)
		}
	}
	wantSum := float64(wantPer) * (0.005 + 0.05 + 0.5 + 5)
	if diff := sum - wantSum; diff < -1e-6 || diff > 1e-6 {
		t.Fatalf("_sum = %g, want %g", sum, wantSum)
	}
}
