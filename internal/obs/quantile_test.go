package obs

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"
)

func expose(reg *Registry) string {
	var b bytes.Buffer
	reg.WritePrometheus(&b)
	return b.String()
}

func contains(haystack, needle string) bool { return strings.Contains(haystack, needle) }

// qRelErrBound is the documented worst-case relative error of a quantile
// estimate: half a linear bucket within a power-of-two range.
const qRelErrBound = 1.0 / (2 * qSubBuckets)

// TestQuantileIndexBounds pins the bucket math: every bucket's [lo, hi)
// range maps back to that bucket, ranges tile without gaps, and
// out-of-range values clamp.
func TestQuantileIndexBounds(t *testing.T) {
	prevHi := 0.0
	for i := 0; i < qTotal; i++ {
		lo, hi := qBounds(i)
		if hi <= lo {
			t.Fatalf("bucket %d: empty range [%g, %g)", i, lo, hi)
		}
		if i > 0 && math.Abs(lo-prevHi) > lo*1e-12 {
			t.Fatalf("bucket %d: gap between %g and %g", i, prevHi, lo)
		}
		prevHi = hi
		if got := qIndex(lo); got != i {
			t.Fatalf("qIndex(lo=%g) = %d, want %d", lo, got, i)
		}
		mid := lo + (hi-lo)/2
		if got := qIndex(mid); got != i {
			t.Fatalf("qIndex(mid=%g) = %d, want %d", mid, got, i)
		}
	}
	if qIndex(0) != 0 || qIndex(-1) != 0 || qIndex(math.NaN()) != 0 {
		t.Fatal("non-positive values must clamp to bucket 0")
	}
	if qIndex(1e300) != qTotal-1 {
		t.Fatal("huge values must clamp to the last bucket")
	}
	lo, _ := qBounds(0)
	if qIndex(lo/2) != 0 {
		t.Fatal("sub-range values must clamp to bucket 0")
	}
}

// TestQuantileErrorBound is the acceptance check for the log-linear
// layout: over random draws spanning the turn pipeline's magnitudes, the
// estimated quantile stays within one bucket of the exact one — a
// relative error bounded by the construction, not by luck.
func TestQuantileErrorBound(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial, gen := range []func() float64{
		// log-uniform micro- to multi-second latencies
		func() float64 { return math.Exp(rng.Float64()*math.Log(1e6) + math.Log(1e-6)) },
		// heavy-tailed: mostly fast with a slow tail, the turn-latency shape
		func() float64 {
			v := 0.002 + rng.ExpFloat64()*0.003
			if rng.Float64() < 0.02 {
				v += rng.Float64() * 0.5
			}
			return v
		},
	} {
		h := &QuantileHistogram{}
		values := make([]float64, 20000)
		for i := range values {
			values[i] = gen()
			h.Observe(values[i])
		}
		sort.Float64s(values)
		for _, q := range []float64{0, 0.25, 0.5, 0.9, 0.99, 0.999, 1} {
			rank := int(math.Ceil(q * float64(len(values))))
			if rank == 0 {
				rank = 1
			}
			exact := values[rank-1]
			est := h.Quantile(q)
			// The estimate is the midpoint of the bucket holding the exact
			// rank value, so it is within one bucket width of exact.
			lo, hi := qBounds(qIndex(exact))
			width := hi - lo
			if diff := math.Abs(est - exact); diff > width {
				t.Errorf("trial %d q=%g: est %g vs exact %g, |diff| %g > bucket width %g",
					trial, q, est, exact, diff, width)
			}
			if rel := math.Abs(est-exact) / exact; rel > 2*qRelErrBound+1e-12 {
				t.Errorf("trial %d q=%g: relative error %g exceeds bound %g",
					trial, q, rel, 2*qRelErrBound)
			}
		}
	}
}

func TestQuantileEmptyAndSingle(t *testing.T) {
	h := &QuantileHistogram{}
	if got := h.Quantile(0.99); got != 0 {
		t.Fatalf("empty quantile = %g", got)
	}
	h.Observe(0.125) // exact power-of-two boundary
	for _, q := range []float64{0, 0.5, 1} {
		got := h.Quantile(q)
		if rel := math.Abs(got-0.125) / 0.125; rel > qRelErrBound+1e-12 {
			t.Fatalf("single-value quantile(%g) = %g", q, got)
		}
	}
	if h.Count() != 1 || math.Abs(h.Sum()-0.125) > 1e-12 || h.Max() != 0.125 {
		t.Fatalf("count/sum/max = %d/%g/%g", h.Count(), h.Sum(), h.Max())
	}
}

// TestQuantileMerge checks Merge equals observing the union.
func TestQuantileMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a, b, both := &QuantileHistogram{}, &QuantileHistogram{}, &QuantileHistogram{}
	for i := 0; i < 5000; i++ {
		v := rng.ExpFloat64() * 0.01
		if i%2 == 0 {
			a.Observe(v)
		} else {
			b.Observe(v)
		}
		both.Observe(v)
	}
	a.Merge(b)
	if a.Count() != both.Count() {
		t.Fatalf("merged count %d, want %d", a.Count(), both.Count())
	}
	if math.Abs(a.Sum()-both.Sum()) > 1e-9 {
		t.Fatalf("merged sum %g, want %g", a.Sum(), both.Sum())
	}
	if a.Max() != both.Max() {
		t.Fatalf("merged max %g, want %g", a.Max(), both.Max())
	}
	for _, q := range []float64{0.5, 0.9, 0.99} {
		if a.Quantile(q) != both.Quantile(q) {
			t.Fatalf("merged quantile(%g) %g, want %g", q, a.Quantile(q), both.Quantile(q))
		}
	}
	a.Merge(nil) // no-op
}

// TestQuantileSnapshot checks the snapshot is a consistent frozen copy.
func TestQuantileSnapshot(t *testing.T) {
	h := &QuantileHistogram{}
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i) * 0.001)
	}
	s := h.Snapshot()
	h.Observe(100) // must not affect the snapshot
	if s.Count() != 100 {
		t.Fatalf("snapshot count %d", s.Count())
	}
	if s.Max() >= 1 {
		t.Fatalf("snapshot max %g leaked later observation", s.Max())
	}
	if got, live := s.Quantile(0.5), h.Quantile(0.5); got == 0 || got > live {
		t.Fatalf("snapshot p50 %g vs live %g", got, live)
	}
}

// TestQuantileConcurrentObserve aims -race at the lock-free Observe path
// and checks nothing is lost: the final count, sum, and bucket total all
// agree with the number of observations.
func TestQuantileConcurrentObserve(t *testing.T) {
	h := &QuantileHistogram{}
	const workers, per = 8, 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < per; i++ {
				h.Observe(0.001 + rng.Float64()*0.1)
				if i%100 == 0 {
					_ = h.Quantile(0.99) // concurrent reads
				}
			}
		}(w)
	}
	wg.Wait()
	if h.Count() != workers*per {
		t.Fatalf("count %d, want %d", h.Count(), workers*per)
	}
	s := h.Snapshot()
	if s.Count() != workers*per {
		t.Fatalf("bucket total %d, want %d", s.Count(), workers*per)
	}
}

// TestRollingQuantileWindow drives the windowed variant with an injected
// clock: observations age out as the window advances, and the live
// quantile tracks only what is inside it.
func TestRollingQuantileWindow(t *testing.T) {
	r := NewRollingQuantile(8*time.Second, 4) // 2s slots
	base := time.Unix(1_000_000, 0)
	now := base
	r.SetClock(func() time.Time { return now })

	for i := 0; i < 100; i++ {
		r.Observe(0.010) // 10ms era
	}
	if got := r.Quantile(0.5); math.Abs(got-0.010)/0.010 > qRelErrBound+1e-12 {
		t.Fatalf("p50 = %g, want ≈ 0.010", got)
	}

	// Advance into the next slot; the old observations are still inside
	// the window, so the tail remembers them.
	now = base.Add(3 * time.Second)
	for i := 0; i < 100; i++ {
		r.Observe(0.100) // 100ms era
	}
	if n := r.Count(); n != 200 {
		t.Fatalf("window count = %d, want 200", n)
	}
	if got := r.Quantile(0.25); got > 0.011 {
		t.Fatalf("p25 = %g, old era should still dominate the low quantiles", got)
	}

	// Advance until the first era's slot ages out (slot-granular: it
	// lives for at most window from its slot start): only the 100ms era
	// remains… and then nothing at all.
	now = base.Add(9 * time.Second)
	if got := r.Quantile(0.5); math.Abs(got-0.100)/0.100 > qRelErrBound+1e-12 {
		t.Fatalf("p50 after aging = %g, want ≈ 0.100", got)
	}
	now = base.Add(30 * time.Second)
	if n := r.Count(); n != 0 {
		t.Fatalf("window count after full decay = %d, want 0", n)
	}
	if got := r.Quantile(0.99); got != 0 {
		t.Fatalf("empty window quantile = %g", got)
	}
}

// TestRollingQuantileConcurrent aims -race at the windowed path.
func TestRollingQuantileConcurrent(t *testing.T) {
	r := NewRollingQuantile(time.Minute, 6)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				r.Observe(float64(i%50+1) * 0.001)
				if i%200 == 0 {
					_ = r.Quantile(0.99)
					_ = r.Count()
				}
			}
		}(w)
	}
	wg.Wait()
	if n := r.Count(); n != 16000 {
		t.Fatalf("count %d, want 16000", n)
	}
}

// TestQuantileGaugesExposition checks the name{quantile="…"} rendering.
func TestQuantileGaugesExposition(t *testing.T) {
	reg := NewRegistry()
	r := NewRollingQuantile(time.Minute, 4)
	for i := 0; i < 1000; i++ {
		r.Observe(0.004)
	}
	reg.QuantileGauges("mdx_turn_seconds_live",
		"Turn latency quantiles over the live window.",
		[]float64{0.5, 0.99}, r.Quantile)
	out := expose(reg)
	// Every draw is 4ms, so both quantiles render the same bucket
	// midpoint, within the documented error of 0.004.
	want := r.Quantile(0.5)
	if math.Abs(want-0.004)/0.004 > qRelErrBound+1e-12 {
		t.Fatalf("p50 = %g, outside the error bound around 0.004", want)
	}
	for _, line := range []string{
		"# TYPE mdx_turn_seconds_live gauge",
		`mdx_turn_seconds_live{quantile="0.5"} `,
		`mdx_turn_seconds_live{quantile="0.99"} `,
	} {
		if !contains(out, line) {
			t.Fatalf("exposition missing %q in:\n%s", line, out)
		}
	}
	suffix := fmt.Sprintf(" %g", want)
	for _, l := range strings.Split(out, "\n") {
		if strings.HasPrefix(l, "mdx_turn_seconds_live{") && !strings.HasSuffix(l, suffix) {
			t.Fatalf("quantile gauge line %q does not carry the bucket midpoint %g", l, want)
		}
	}
}
