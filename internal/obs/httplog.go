package obs

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"sync"
	"time"
)

// logInfo carries handler-attached fields (session id, intent) back to the
// access-log middleware through the request context.
type logInfo struct {
	mu     sync.Mutex
	fields []Attr
}

type logCtxKey struct{}

// LogField attaches a key/value pair to the current request's access-log
// line. No-op when the request did not pass through AccessLog.
func LogField(r *http.Request, key, value string) {
	info, ok := r.Context().Value(logCtxKey{}).(*logInfo)
	if !ok {
		return
	}
	info.mu.Lock()
	info.fields = append(info.fields, Attr{Key: key, Value: value})
	info.mu.Unlock()
}

// statusWriter captures the response status and size.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(b)
	w.bytes += n
	return n, err
}

// AccessLog wraps a handler with structured JSON request logging: one line
// per request with time, method, path, status, duration, response bytes,
// and any handler-attached fields (see LogField).
func AccessLog(out io.Writer, next http.Handler) http.Handler {
	var mu sync.Mutex
	enc := json.NewEncoder(out)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		info := &logInfo{}
		r = r.WithContext(context.WithValue(r.Context(), logCtxKey{}, info))
		sw := &statusWriter{ResponseWriter: w}
		next.ServeHTTP(sw, r)
		if sw.status == 0 {
			sw.status = http.StatusOK
		}
		line := map[string]interface{}{
			"time":        start.UTC().Format(time.RFC3339Nano),
			"method":      r.Method,
			"path":        r.URL.Path,
			"status":      sw.status,
			"duration_ms": float64(time.Since(start).Microseconds()) / 1000,
			"bytes":       sw.bytes,
		}
		info.mu.Lock()
		for _, f := range info.fields {
			line[f.Key] = f.Value
		}
		info.mu.Unlock()
		mu.Lock()
		_ = enc.Encode(line)
		mu.Unlock()
	})
}
