package obs

import (
	"context"
	crand "crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// logInfo carries handler-attached fields (session id, intent) back to the
// access-log middleware through the request context.
type logInfo struct {
	requestID string
	mu        sync.Mutex
	fields    []Attr
}

type logCtxKey struct{}

// reqIDPrefix is a per-process random prefix so IDs from different server
// instances never collide; reqIDSeq makes them unique within the process.
var (
	reqIDPrefix = func() string {
		var b [4]byte
		if _, err := crand.Read(b[:]); err != nil {
			return "mdx0"
		}
		return hex.EncodeToString(b[:])
	}()
	reqIDSeq atomic.Uint64
)

// newRequestID mints a process-unique request identifier.
func newRequestID() string {
	return fmt.Sprintf("%s-%08x", reqIDPrefix, reqIDSeq.Add(1))
}

// NewRequestID mints a process-unique correlation ID in the format
// AccessLog uses — for requests that originate inside a process (router
// session handoffs, health probes) rather than from a client, so their
// backend access-log lines still carry a joinable ID.
func NewRequestID() string { return newRequestID() }

// RequestID returns the request's correlation ID: the X-Request-ID the
// client sent, or the one AccessLog minted. Empty when the request did
// not pass through AccessLog.
func RequestID(r *http.Request) string {
	info, ok := r.Context().Value(logCtxKey{}).(*logInfo)
	if !ok {
		return ""
	}
	return info.requestID
}

// LogField attaches a key/value pair to the current request's access-log
// line. No-op when the request did not pass through AccessLog.
func LogField(r *http.Request, key, value string) {
	info, ok := r.Context().Value(logCtxKey{}).(*logInfo)
	if !ok {
		return
	}
	info.mu.Lock()
	info.fields = append(info.fields, Attr{Key: key, Value: value})
	info.mu.Unlock()
}

// statusWriter captures the response status and size.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(b)
	w.bytes += n
	return n, err
}

// AccessLog wraps a handler with structured JSON request logging: one line
// per request with time, method, path, status, duration, response bytes,
// the request's correlation ID, and any handler-attached fields (see
// LogField). An X-Request-ID header sent by the client is propagated;
// otherwise one is minted. Either way it is echoed on the response and
// exposed to handlers via RequestID, so a slow trace, its access-log
// line, and the client's own records all join on one key.
func AccessLog(out io.Writer, next http.Handler) http.Handler {
	var mu sync.Mutex
	enc := json.NewEncoder(out)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		id := r.Header.Get("X-Request-ID")
		if id == "" {
			id = newRequestID()
		}
		w.Header().Set("X-Request-ID", id)
		info := &logInfo{requestID: id}
		r = r.WithContext(context.WithValue(r.Context(), logCtxKey{}, info))
		sw := &statusWriter{ResponseWriter: w}
		next.ServeHTTP(sw, r)
		if sw.status == 0 {
			sw.status = http.StatusOK
		}
		line := map[string]interface{}{
			"time":        start.UTC().Format(time.RFC3339Nano),
			"method":      r.Method,
			"path":        r.URL.Path,
			"status":      sw.status,
			"duration_ms": float64(time.Since(start).Microseconds()) / 1000,
			"bytes":       sw.bytes,
			"request_id":  id,
		}
		info.mu.Lock()
		for _, f := range info.fields {
			line[f.Key] = f.Value
		}
		info.mu.Unlock()
		mu.Lock()
		_ = enc.Encode(line)
		mu.Unlock()
	})
}
