package obs

import (
	"strconv"
	"sync"
	"time"
)

// Attr is one key/value span attribute.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// Span is one finished pipeline stage within a trace.
type Span struct {
	Name     string        `json:"name"`
	Start    time.Time     `json:"start"`
	Duration time.Duration `json:"duration_ns"`
	Attrs    []Attr        `json:"attrs,omitempty"`
}

// Trace records the stages of one agent turn (intent classification,
// entity recognition, slot filling, template instantiation, KB execution,
// answer rendering). It is attached to the Turn and retrievable over
// GET /trace?session=….
type Trace struct {
	mu    sync.Mutex
	turn  int
	start time.Time
	end   time.Time
	spans []Span
	attrs []Attr
}

// NewTrace opens a trace for the given turn number.
func NewTrace(turn int) *Trace {
	return &Trace{turn: turn, start: time.Now()}
}

// SpanRef is an open span; call End to record it.
type SpanRef struct {
	t     *Trace
	name  string
	start time.Time
	attrs []Attr
}

// StartSpan opens a named span. Safe on a nil trace (returns a no-op ref).
func (t *Trace) StartSpan(name string) *SpanRef {
	if t == nil {
		return nil
	}
	return &SpanRef{t: t, name: name, start: time.Now()}
}

// Attr attaches a string attribute. Safe on a nil ref.
func (s *SpanRef) Attr(key, value string) *SpanRef {
	if s == nil {
		return nil
	}
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
	return s
}

// AttrInt attaches an integer attribute. Safe on a nil ref.
func (s *SpanRef) AttrInt(key string, value int) *SpanRef {
	return s.Attr(key, strconv.Itoa(value))
}

// AttrFloat attaches a float attribute. Safe on a nil ref.
func (s *SpanRef) AttrFloat(key string, value float64) *SpanRef {
	return s.Attr(key, strconv.FormatFloat(value, 'g', 4, 64))
}

// End closes the span and records it on the trace. Safe on a nil ref.
func (s *SpanRef) End() {
	if s == nil {
		return
	}
	sp := Span{Name: s.name, Start: s.start, Duration: time.Since(s.start), Attrs: s.attrs}
	s.t.mu.Lock()
	s.t.spans = append(s.t.spans, sp)
	s.t.mu.Unlock()
}

// Annotate attaches a trace-level attribute (request ID, session) —
// metadata about the whole turn rather than one stage. Safe on a nil
// trace, and usable after Finish: the HTTP handler binds the request ID
// once the turn returns.
func (t *Trace) Annotate(key, value string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.attrs = append(t.attrs, Attr{Key: key, Value: value})
	t.mu.Unlock()
}

// Finish marks the turn complete. Safe on a nil trace.
func (t *Trace) Finish() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.end = time.Now()
	t.mu.Unlock()
}

// TraceData is an immutable snapshot of a trace, shaped for JSON.
type TraceData struct {
	Turn     int           `json:"turn"`
	Start    time.Time     `json:"start"`
	Duration time.Duration `json:"duration_ns"`
	Attrs    []Attr        `json:"attrs,omitempty"`
	Spans    []Span        `json:"spans"`
}

// Snapshot copies the trace for serialization. Safe on a nil trace.
func (t *Trace) Snapshot() TraceData {
	if t == nil {
		return TraceData{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	end := t.end
	if end.IsZero() {
		end = time.Now()
	}
	return TraceData{
		Turn:     t.turn,
		Start:    t.start,
		Duration: end.Sub(t.start),
		Attrs:    append([]Attr(nil), t.attrs...),
		Spans:    append([]Span(nil), t.spans...),
	}
}

// Spans returns a copy of the finished spans. Safe on a nil trace.
func (t *Trace) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Span(nil), t.spans...)
}
