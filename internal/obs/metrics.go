// Package obs is the dependency-free observability substrate of the
// serving and bootstrap pipelines: an atomic metrics registry with a
// Prometheus text-exposition writer, per-turn execution traces, phase
// timing for the offline bootstrap, and structured HTTP access logging.
//
// The deployed system the paper describes (§7) reports per-intent usage
// and success rates over seven months of production traffic (Figures
// 11-12); this package provides the bookkeeping those figures need, live,
// without pulling in any third-party client library.
package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing counter.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an instantaneous integer value.
type Gauge struct {
	v atomic.Int64
}

// Set stores the value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds delta (may be negative).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// GaugeFunc is a gauge whose value is read from a callback at exposition
// time — the fit for values another subsystem already tracks (pool
// counters, worker totals) that would otherwise need a sampling loop.
type GaugeFunc struct {
	fn func() int64
}

// Value invokes the callback.
func (g *GaugeFunc) Value() int64 { return g.fn() }

// DefBuckets are the default latency buckets in seconds, tuned for the
// sub-millisecond-to-seconds range the turn pipeline spans.
var DefBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5,
}

// Histogram is a fixed-bucket latency histogram. Buckets hold
// non-cumulative counts; exposition emits them cumulatively with the
// conventional +Inf terminal bucket.
type Histogram struct {
	bounds []float64 // upper bounds, ascending
	counts []atomic.Uint64
	inf    atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-updated
}

func newHistogram(buckets []float64) *Histogram {
	if len(buckets) == 0 {
		buckets = DefBuckets
	}
	b := append([]float64(nil), buckets...)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b))}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	idx := sort.SearchFloat64s(h.bounds, v)
	if idx < len(h.bounds) {
		h.counts[idx].Add(1)
	} else {
		h.inf.Add(1)
	}
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// metric is anything a family can hold under one label set.
type metric interface{}

// family is one exposition family: a name, help text, a type, and its
// labeled children.
type family struct {
	name    string
	help    string
	typ     string // "counter", "gauge", "histogram"
	labels  []string
	buckets []float64

	mu       sync.Mutex
	children map[string]metric // key: joined label values
	order    []string
}

func (f *family) child(values []string, make func() metric) metric {
	key := strings.Join(values, "\x00")
	f.mu.Lock()
	defer f.mu.Unlock()
	m, ok := f.children[key]
	if !ok {
		m = make()
		f.children[key] = m
		f.order = append(f.order, key)
	}
	return m
}

// Registry holds metric families and renders them in Prometheus text
// exposition format (version 0.0.4).
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

func (r *Registry) family(name, help, typ string, labels []string, buckets []float64) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.byName[name]; ok {
		if f.typ != typ {
			panic(fmt.Sprintf("obs: metric %q re-registered as %s (was %s)", name, typ, f.typ))
		}
		return f
	}
	f := &family{
		name: name, help: help, typ: typ,
		labels: labels, buckets: buckets,
		children: make(map[string]metric),
	}
	r.families = append(r.families, f)
	r.byName[name] = f
	return f
}

// Counter returns (registering if needed) an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.family(name, help, "counter", nil, nil)
	return f.child(nil, func() metric { return &Counter{} }).(*Counter)
}

// Gauge returns (registering if needed) an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.family(name, help, "gauge", nil, nil)
	return f.child(nil, func() metric { return &Gauge{} }).(*Gauge)
}

// Histogram returns (registering if needed) an unlabeled histogram; nil
// buckets select DefBuckets.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	f := r.family(name, help, "histogram", nil, buckets)
	return f.child(nil, func() metric { return newHistogram(f.buckets) }).(*Histogram)
}

// GaugeFunc returns (registering if needed) an unlabeled gauge rendered
// by calling fn at exposition time. A name registered earlier keeps its
// original callback.
func (r *Registry) GaugeFunc(name, help string, fn func() int64) *GaugeFunc {
	f := r.family(name, help, "gauge", nil, nil)
	return f.child(nil, func() metric { return &GaugeFunc{fn: fn} }).(*GaugeFunc)
}

// floatGaugeFunc is a float-valued callback gauge (quantiles are
// fractional seconds; the integer GaugeFunc cannot carry them).
type floatGaugeFunc struct {
	fn func() float64
}

// QuantileGauges registers a gauge family labeled by quantile whose
// values are read from fn at exposition time — the live-quantile shape
// (`name{quantile="0.99"} 0.0042`) backed by a RollingQuantile or any
// other quantile source. A name registered earlier keeps its original
// callbacks.
func (r *Registry) QuantileGauges(name, help string, quantiles []float64, fn func(q float64) float64) {
	r.QuantileGaugesWith(name, help, nil, nil, quantiles, fn)
}

// QuantileGaugesWith is QuantileGauges with extra leading labels bound to
// fixed values — the multi-tenant shape
// (`name{tenant="retail",quantile="0.99"} 0.0042`), one callback set per
// (values, quantile) pair. Every registration against one family must use
// the same label names; a (values, quantile) child registered earlier
// keeps its original callback.
func (r *Registry) QuantileGaugesWith(name, help string, labels, values []string, quantiles []float64, fn func(q float64) float64) {
	all := append(append([]string{}, labels...), "quantile")
	f := r.family(name, help, "gauge", all, nil)
	for _, q := range quantiles {
		q := q
		child := append(append([]string{}, values...), formatFloat(q))
		f.child(child, func() metric {
			return &floatGaugeFunc{fn: func() float64 { return fn(q) }}
		})
	}
}

// joinBound prepends a vec's curried label values to a With call's values.
func joinBound(bound, values []string) []string {
	if len(bound) == 0 {
		return values
	}
	all := make([]string, 0, len(bound)+len(values))
	all = append(all, bound...)
	return append(all, values...)
}

// CounterVec is a counter family partitioned by label values, optionally
// with a prefix of the label values pre-bound (see Curry).
type CounterVec struct {
	f     *family
	bound []string
}

// CounterVec returns (registering if needed) a labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{f: r.family(name, help, "counter", labels, nil)}
}

// With returns the counter for the given label values (appended to any
// curried prefix).
func (v *CounterVec) With(values ...string) *Counter {
	return v.f.child(joinBound(v.bound, values), func() metric { return &Counter{} }).(*Counter)
}

// Curry returns a view of the family with the given leading label values
// pre-bound, so callers that only know the trailing labels (e.g. intent)
// record into a fixed partition (e.g. tenant) transparently.
func (v *CounterVec) Curry(values ...string) *CounterVec {
	return &CounterVec{f: v.f, bound: joinBound(v.bound, values)}
}

// GaugeVec is a gauge family partitioned by label values, optionally with
// a prefix of the label values pre-bound (see Curry).
type GaugeVec struct {
	f     *family
	bound []string
}

// GaugeVec returns (registering if needed) a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{f: r.family(name, help, "gauge", labels, nil)}
}

// With returns the gauge for the given label values (appended to any
// curried prefix).
func (v *GaugeVec) With(values ...string) *Gauge {
	return v.f.child(joinBound(v.bound, values), func() metric { return &Gauge{} }).(*Gauge)
}

// Curry returns a view of the family with the given leading label values
// pre-bound.
func (v *GaugeVec) Curry(values ...string) *GaugeVec {
	return &GaugeVec{f: v.f, bound: joinBound(v.bound, values)}
}

// HistogramVec is a histogram family partitioned by label values,
// optionally with a prefix of the label values pre-bound (see Curry).
type HistogramVec struct {
	f     *family
	bound []string
}

// HistogramVec returns (registering if needed) a labeled histogram family;
// nil buckets select DefBuckets.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	return &HistogramVec{f: r.family(name, help, "histogram", labels, buckets)}
}

// With returns the histogram for the given label values (appended to any
// curried prefix).
func (v *HistogramVec) With(values ...string) *Histogram {
	return v.f.child(joinBound(v.bound, values), func() metric { return newHistogram(v.f.buckets) }).(*Histogram)
}

// Curry returns a view of the family with the given leading label values
// pre-bound.
func (v *HistogramVec) Curry(values ...string) *HistogramVec {
	return &HistogramVec{f: v.f, bound: joinBound(v.bound, values)}
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return v
}

// labelString renders {k="v",…} for the family's labels plus extras.
func labelString(names, values []string, extraK, extraV string) string {
	if len(names) == 0 && extraK == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		val := ""
		if i < len(values) {
			val = values[i]
		}
		fmt.Fprintf(&b, `%s="%s"`, n, escapeLabel(val))
	}
	if extraK != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s="%s"`, extraK, escapeLabel(extraV))
	}
	b.WriteByte('}')
	return b.String()
}

func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// WritePrometheus renders every registered family in text exposition
// format.
func (r *Registry) WritePrometheus(w io.Writer) {
	r.mu.Lock()
	fams := append([]*family(nil), r.families...)
	r.mu.Unlock()
	for _, f := range fams {
		f.mu.Lock()
		keys := append([]string(nil), f.order...)
		children := make([]metric, len(keys))
		for i, k := range keys {
			children[i] = f.children[k]
		}
		f.mu.Unlock()
		if len(children) == 0 {
			continue
		}
		fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help)
		fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ)
		for i, m := range children {
			values := strings.Split(keys[i], "\x00")
			if keys[i] == "" {
				values = nil
			}
			switch x := m.(type) {
			case *Counter:
				fmt.Fprintf(w, "%s%s %d\n", f.name, labelString(f.labels, values, "", ""), x.Value())
			case *Gauge:
				fmt.Fprintf(w, "%s%s %d\n", f.name, labelString(f.labels, values, "", ""), x.Value())
			case *GaugeFunc:
				if x.fn != nil {
					fmt.Fprintf(w, "%s%s %d\n", f.name, labelString(f.labels, values, "", ""), x.Value())
				}
			case *floatGaugeFunc:
				if x.fn != nil {
					fmt.Fprintf(w, "%s%s %g\n", f.name, labelString(f.labels, values, "", ""), x.fn())
				}
			case *Histogram:
				cum := uint64(0)
				for bi, bound := range x.bounds {
					cum += x.counts[bi].Load()
					fmt.Fprintf(w, "%s_bucket%s %d\n", f.name,
						labelString(f.labels, values, "le", formatFloat(bound)), cum)
				}
				fmt.Fprintf(w, "%s_bucket%s %d\n", f.name,
					labelString(f.labels, values, "le", "+Inf"), x.Count())
				fmt.Fprintf(w, "%s_sum%s %g\n", f.name, labelString(f.labels, values, "", ""), x.Sum())
				fmt.Fprintf(w, "%s_count%s %d\n", f.name, labelString(f.labels, values, "", ""), x.Count())
			}
		}
	}
}

// Handler returns an http.Handler serving the registry in exposition
// format (the GET /metrics endpoint).
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}
