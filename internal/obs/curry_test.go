package obs_test

import (
	"strings"
	"testing"

	"ontoconv/internal/obs"
)

// TestCurriedVecsShareFamilies: two tenants currying the same family
// record into distinct children of one exposition family, and a curried
// With is identical to spelling out the full label values.
func TestCurriedVecsShareFamilies(t *testing.T) {
	reg := obs.NewRegistry()
	cv := reg.CounterVec("t_turns_total", "turns", "tenant", "intent")
	a, b := cv.Curry("alpha"), cv.Curry("beta")
	a.With("greet").Inc()
	a.With("greet").Inc()
	b.With("greet").Inc()
	if got := cv.With("alpha", "greet").Value(); got != 2 {
		t.Fatalf("full-path With sees %d, want 2 (curried and full values must alias)", got)
	}

	gv := reg.GaugeVec("t_resident", "resident", "tenant", "shard")
	gv.Curry("alpha").With("0").Set(7)
	if got := gv.With("alpha", "0").Value(); got != 7 {
		t.Fatalf("gauge full-path = %d, want 7", got)
	}

	hv := reg.HistogramVec("t_lat_seconds", "latency", nil, "tenant", "stage")
	hv.Curry("beta").With("exec").Observe(0.5)
	if got := hv.With("beta", "exec").Count(); got != 1 {
		t.Fatalf("histogram full-path count = %d, want 1", got)
	}

	var sb strings.Builder
	reg.WritePrometheus(&sb)
	out := sb.String()
	for _, want := range []string{
		`t_turns_total{tenant="alpha",intent="greet"} 2`,
		`t_turns_total{tenant="beta",intent="greet"} 1`,
		`t_resident{tenant="alpha",shard="0"} 7`,
		`t_lat_seconds_count{tenant="beta",stage="exec"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n%s", want, out)
		}
	}
}

// TestCurryStacks: currying a curried vec appends, not replaces.
func TestCurryStacks(t *testing.T) {
	reg := obs.NewRegistry()
	cv := reg.CounterVec("t_stack_total", "stacked", "a", "b", "c")
	cv.Curry("1").Curry("2").With("3").Add(5)
	if got := cv.With("1", "2", "3").Value(); got != 5 {
		t.Fatalf("stacked curry = %d, want 5", got)
	}
}

// TestQuantileGaugesWith: the tenant-labeled live-quantile shape renders
// one line per (tenant, quantile) with the per-tenant callback.
func TestQuantileGaugesWith(t *testing.T) {
	reg := obs.NewRegistry()
	mk := func(base float64) func(float64) float64 {
		return func(q float64) float64 { return base + q }
	}
	reg.QuantileGaugesWith("t_live_seconds", "live quantiles",
		[]string{"tenant"}, []string{"alpha"}, []float64{0.5, 0.99}, mk(1))
	reg.QuantileGaugesWith("t_live_seconds", "live quantiles",
		[]string{"tenant"}, []string{"beta"}, []float64{0.5, 0.99}, mk(10))

	var sb strings.Builder
	reg.WritePrometheus(&sb)
	out := sb.String()
	for _, want := range []string{
		`t_live_seconds{tenant="alpha",quantile="0.5"} 1.5`,
		`t_live_seconds{tenant="alpha",quantile="0.99"} 1.99`,
		`t_live_seconds{tenant="beta",quantile="0.5"} 10.5`,
		`t_live_seconds{tenant="beta",quantile="0.99"} 10.99`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n%s", want, out)
		}
	}
	// Help/type headers appear once even with two registrations.
	if n := strings.Count(out, "# TYPE t_live_seconds gauge"); n != 1 {
		t.Fatalf("TYPE header count = %d, want 1", n)
	}
}
