package obs

import (
	"encoding/binary"
	"testing"
)

// FuzzQuantileHistogram fuzzes the log-linear histogram's algebraic
// invariants: Merge is commutative (observe A then merge a B-histogram
// must equal observe B then merge an A-histogram), Quantile is
// monotone in q, and a Snapshot answers exactly like the live
// histogram. These are the properties the live tail-latency gauges and
// the rolling-window merge depend on.
func FuzzQuantileHistogram(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0, 0x80, 0x41, 7, 7})
	f.Add([]byte{0, 0, 0, 1})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		// Four input bytes per observation, spread across magnitudes so
		// both the linear and exponential bucket ranges are exercised.
		var vals []float64
		for i := 0; i+4 <= len(data); i += 4 {
			u := binary.LittleEndian.Uint32(data[i:])
			v := float64(u) / 997.0
			switch u % 3 {
			case 1:
				v /= 1e9
			case 2:
				v *= 1e3
			}
			vals = append(vals, v)
		}
		split := len(vals) / 2
		a, b := vals[:split], vals[split:]

		observe := func(vs []float64) *QuantileHistogram {
			h := &QuantileHistogram{}
			for _, v := range vs {
				h.Observe(v)
			}
			return h
		}

		// Merge commutativity.
		ab := observe(a)
		ab.Merge(observe(b))
		ba := observe(b)
		ba.Merge(observe(a))
		if ab.Count() != ba.Count() {
			t.Fatalf("merge count not commutative: %d vs %d", ab.Count(), ba.Count())
		}
		if ab.Sum() != ba.Sum() {
			t.Fatalf("merge sum not commutative: %v vs %v", ab.Sum(), ba.Sum())
		}
		if ab.Max() != ba.Max() {
			t.Fatalf("merge max not commutative: %v vs %v", ab.Max(), ba.Max())
		}
		qs := []float64{0, 0.1, 0.25, 0.5, 0.9, 0.99, 0.999, 1}
		for _, q := range qs {
			if x, y := ab.Quantile(q), ba.Quantile(q); x != y {
				t.Fatalf("merge quantile(%v) not commutative: %v vs %v", q, x, y)
			}
		}

		// Quantile monotonicity over the merged histogram.
		prev := ab.Quantile(qs[0])
		for _, q := range qs[1:] {
			cur := ab.Quantile(q)
			if cur < prev {
				t.Fatalf("quantile not monotone: Q(%v)=%v < previous %v", q, cur, prev)
			}
			prev = cur
		}

		// Snapshot consistency.
		snap := ab.Snapshot()
		if snap.Count() != ab.Count() {
			t.Fatalf("snapshot count %d != live %d", snap.Count(), ab.Count())
		}
		for _, q := range qs {
			if x, y := snap.Quantile(q), ab.Quantile(q); x != y {
				t.Fatalf("snapshot quantile(%v)=%v != live %v", q, x, y)
			}
		}
	})
}
