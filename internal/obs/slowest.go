package obs

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// SlowTraces is a bounded reservoir of the K slowest traces offered to
// it. Offers are tagged with an artifact generation (the serving bundle
// version): switching generations purges retained traces from earlier
// ones and rejects stragglers still in flight on a retired runtime, so
// the reservoir never serves a per-stage breakdown that no longer
// describes the live artifacts.
//
// The fast path is a single atomic load: once the reservoir is full, an
// offer slower than none of the retained turns returns without taking
// the lock, so the per-turn cost under healthy traffic is negligible.
type SlowTraces struct {
	k int
	// floor is the smallest retained duration once full (math.MaxInt64
	// while the reservoir has room), the lock-free admission gate.
	floor atomic.Int64

	mu      sync.Mutex
	gen     string
	entries []slowEntry // unordered; at most k
}

type slowEntry struct {
	d     time.Duration
	gen   string
	trace *Trace
}

// DefaultSlowK is the reservoir bound servers use unless configured
// otherwise.
const DefaultSlowK = 16

// NewSlowTraces builds a reservoir retaining the k slowest traces; k < 1
// selects DefaultSlowK.
func NewSlowTraces(k int) *SlowTraces {
	if k < 1 {
		k = DefaultSlowK
	}
	s := &SlowTraces{k: k, entries: make([]slowEntry, 0, k)}
	s.floor.Store(0) // empty: everything admitted
	return s
}

// K returns the reservoir bound.
func (s *SlowTraces) K() int { return s.k }

// SetGeneration switches the live artifact generation: retained traces
// from other generations are purged and later offers tagged with a
// different generation are rejected. Setting the already-live generation
// is a no-op (a reload to the same bundle drops nothing).
func (s *SlowTraces) SetGeneration(gen string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if gen == s.gen {
		return
	}
	s.gen = gen
	kept := s.entries[:0]
	for _, e := range s.entries {
		if e.gen == gen {
			kept = append(kept, e)
		}
	}
	// Clear evicted slots so dropped traces are not pinned by the
	// backing array.
	for i := len(kept); i < len(s.entries); i++ {
		s.entries[i] = slowEntry{}
	}
	s.entries = kept
	s.updateFloorLocked()
}

// Offer proposes one finished trace. It is retained when the reservoir
// has room or d exceeds the smallest retained duration, and the offer's
// generation matches the live one. Returns whether the trace was kept.
func (s *SlowTraces) Offer(gen string, d time.Duration, t *Trace) bool {
	if t == nil {
		return false
	}
	if int64(d) <= s.floor.Load() {
		return false // full, and no slower than anything retained
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if gen != s.gen {
		return false // stale generation still finishing a turn
	}
	if len(s.entries) < s.k {
		s.entries = append(s.entries, slowEntry{d: d, gen: gen, trace: t})
		s.updateFloorLocked()
		return true
	}
	minIdx := 0
	for i := 1; i < len(s.entries); i++ {
		if s.entries[i].d < s.entries[minIdx].d {
			minIdx = i
		}
	}
	if d <= s.entries[minIdx].d {
		return false
	}
	s.entries[minIdx] = slowEntry{d: d, gen: gen, trace: t}
	s.updateFloorLocked()
	return true
}

// updateFloorLocked recomputes the lock-free admission gate. Caller holds
// s.mu.
func (s *SlowTraces) updateFloorLocked() {
	if len(s.entries) < s.k {
		s.floor.Store(0)
		return
	}
	min := int64(math.MaxInt64)
	for _, e := range s.entries {
		if int64(e.d) < min {
			min = int64(e.d)
		}
	}
	s.floor.Store(min)
}

// SlowTraceData is one retained slow turn, shaped for JSON: the recorded
// duration, the artifact generation it ran on, and the full per-stage
// trace snapshot (carrying request-id/session annotations when the turn
// came through the HTTP path).
type SlowTraceData struct {
	Duration   time.Duration `json:"duration_ns"`
	Generation string        `json:"generation"`
	Trace      TraceData     `json:"trace"`
}

// Snapshot returns the retained traces, slowest first. Trace contents are
// snapshotted at call time, so annotations attached after the offer (the
// request ID, bound post-turn by the HTTP handler) are included.
func (s *SlowTraces) Snapshot() []SlowTraceData {
	s.mu.Lock()
	entries := append([]slowEntry(nil), s.entries...)
	s.mu.Unlock()
	sort.Slice(entries, func(i, j int) bool { return entries[i].d > entries[j].d })
	out := make([]SlowTraceData, 0, len(entries))
	for _, e := range entries {
		out = append(out, SlowTraceData{Duration: e.d, Generation: e.gen, Trace: e.trace.Snapshot()})
	}
	return out
}
