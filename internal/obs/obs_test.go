package obs

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("turns_total", "turns")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d", c.Value())
	}
	g := r.Gauge("sessions_live", "live sessions")
	g.Set(7)
	g.Add(-2)
	if g.Value() != 5 {
		t.Fatalf("gauge = %d", g.Value())
	}
	// re-registering returns the same instance
	if r.Counter("turns_total", "turns") != c {
		t.Fatal("counter not deduplicated")
	}
}

func TestCounterVecLabels(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("intent_total", "by intent", "intent")
	v.With("Precautions of Drug").Add(3)
	v.With("Dosage of Drug").Inc()
	if v.With("Precautions of Drug").Value() != 3 {
		t.Fatal("labeled counter lost")
	}
	var b bytes.Buffer
	r.WritePrometheus(&b)
	out := b.String()
	for _, want := range []string{
		"# TYPE intent_total counter",
		`intent_total{intent="Precautions of Drug"} 3`,
		`intent_total{intent="Dosage of Drug"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestGaugeVecLabels(t *testing.T) {
	r := NewRegistry()
	v := r.GaugeVec("bundle_info", "live bundle version", "version")
	v.With("aaaa00000000").Set(1)
	v.With("aaaa00000000").Set(0)
	v.With("bbbb11111111").Set(1)
	if v.With("bbbb11111111").Value() != 1 {
		t.Fatal("labeled gauge lost")
	}
	if v.With("aaaa00000000") != v.With("aaaa00000000") {
		t.Fatal("gauge child not deduplicated")
	}
	var b bytes.Buffer
	r.WritePrometheus(&b)
	out := b.String()
	for _, want := range []string{
		"# TYPE bundle_info gauge",
		`bundle_info{version="aaaa00000000"} 0`,
		`bundle_info{version="bbbb11111111"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "latency", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.05, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d", h.Count())
	}
	if got := h.Sum(); got < 5.6 || got > 5.61 {
		t.Fatalf("sum = %g", got)
	}
	var b bytes.Buffer
	r.WritePrometheus(&b)
	out := b.String()
	for _, want := range []string{
		"# TYPE lat_seconds histogram",
		`lat_seconds_bucket{le="0.01"} 1`,
		`lat_seconds_bucket{le="0.1"} 3`,
		`lat_seconds_bucket{le="1"} 4`,
		`lat_seconds_bucket{le="+Inf"} 5`,
		"lat_seconds_count 5",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestHistogramBoundInclusive(t *testing.T) {
	h := newHistogram([]float64{1, 2})
	h.Observe(1) // le="1" is inclusive
	if got := h.counts[0].Load(); got != 1 {
		t.Fatalf("bucket[0] = %d", got)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := newHistogram(nil)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				h.Observe(0.001)
			}
		}()
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Fatalf("count = %d", h.Count())
	}
	if got := h.Sum(); got < 7.99 || got > 8.01 {
		t.Fatalf("sum = %g", got)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("x_total", "x", "v").With(`a"b\c`).Inc()
	var b bytes.Buffer
	r.WritePrometheus(&b)
	if !strings.Contains(b.String(), `x_total{v="a\"b\\c"} 1`) {
		t.Fatalf("escaping wrong:\n%s", b.String())
	}
}

func TestRegistryHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("hits_total", "hits").Inc()
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Fatalf("content type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "hits_total 1") {
		t.Fatalf("body = %q", rec.Body.String())
	}
}

func TestTraceSpans(t *testing.T) {
	tr := NewTrace(3)
	sp := tr.StartSpan("classify").Attr("intent", "Dosage of Drug").AttrFloat("confidence", 0.91)
	time.Sleep(time.Millisecond)
	sp.End()
	tr.StartSpan("execute").AttrInt("rows", 4).End()
	tr.Finish()

	d := tr.Snapshot()
	if d.Turn != 3 || len(d.Spans) != 2 {
		t.Fatalf("snapshot = %+v", d)
	}
	if d.Spans[0].Name != "classify" || d.Spans[0].Duration <= 0 {
		t.Fatalf("span 0 = %+v", d.Spans[0])
	}
	if d.Spans[0].Attrs[0].Value != "Dosage of Drug" {
		t.Fatalf("attrs = %+v", d.Spans[0].Attrs)
	}
	if d.Duration < d.Spans[0].Duration {
		t.Fatalf("trace duration %v < span duration %v", d.Duration, d.Spans[0].Duration)
	}
	// JSON round-trips
	if _, err := json.Marshal(d); err != nil {
		t.Fatal(err)
	}
}

func TestTraceNilSafe(t *testing.T) {
	var tr *Trace
	tr.StartSpan("x").Attr("k", "v").End() // must not panic
	tr.Finish()
	if got := tr.Snapshot(); len(got.Spans) != 0 {
		t.Fatalf("nil trace snapshot = %+v", got)
	}
}

func TestPhaseLog(t *testing.T) {
	pl := NewPhaseLog()
	done := pl.Phase("pattern_extraction")
	time.Sleep(time.Millisecond)
	done(C("intents", 42))
	pl.Phase("entity_extraction")(C("entities", 9), C("values", 120))

	phases := pl.Phases()
	if len(phases) != 2 || phases[0].Name != "pattern_extraction" {
		t.Fatalf("phases = %+v", phases)
	}
	if phases[0].Duration <= 0 {
		t.Fatal("phase duration not recorded")
	}
	sum := pl.Summary()
	for _, want := range []string{"pattern_extraction", "intents=42", "entities=9", "total"} {
		if !strings.Contains(sum, want) {
			t.Fatalf("summary missing %q:\n%s", want, sum)
		}
	}
	if pl.Total() < phases[0].Duration {
		t.Fatal("total < first phase")
	}
}

func TestPhaseLogNilSafe(t *testing.T) {
	var pl *PhaseLog
	pl.Phase("x")(C("n", 1)) // must not panic
	if pl.Summary() != "" || pl.Total() != 0 {
		t.Fatal("nil phase log not empty")
	}
}

func TestAccessLog(t *testing.T) {
	var buf bytes.Buffer
	h := AccessLog(&buf, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		LogField(r, "session", "s1")
		w.WriteHeader(http.StatusTeapot)
		w.Write([]byte("short and stout"))
	}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/chat", nil))

	var line map[string]interface{}
	if err := json.Unmarshal(buf.Bytes(), &line); err != nil {
		t.Fatalf("log not JSON: %v (%q)", err, buf.String())
	}
	if line["method"] != "POST" || line["path"] != "/chat" || line["session"] != "s1" {
		t.Fatalf("line = %v", line)
	}
	if line["status"].(float64) != float64(http.StatusTeapot) {
		t.Fatalf("status = %v", line["status"])
	}
	if line["bytes"].(float64) != 15 {
		t.Fatalf("bytes = %v", line["bytes"])
	}
	if _, ok := line["duration_ms"]; !ok {
		t.Fatal("no duration")
	}
}
