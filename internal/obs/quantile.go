package obs

import (
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// The fixed-bucket Histogram answers "how many turns were under 25ms?"
// but cannot answer "what is p99 right now?" with useful resolution: its
// coarse buckets put everything between 100ms and 250ms in one bin. The
// QuantileHistogram below is the high-resolution complement: a log-linear
// (HDR-style) layout whose relative error is bounded by construction, so
// tail quantiles read off it are trustworthy at any magnitude the turn
// pipeline can produce.
//
// Layout: values are split by binary exponent (math.Frexp), and each
// power-of-two range [2^(e-1), 2^e) is subdivided into qSubBuckets
// equal-width linear buckets. Bucket width within a range is
// 2^(e-1)/qSubBuckets, so the half-width midpoint estimate any quantile
// returns is within width/2 of some observation in that bucket — a
// relative error of at most 1/(2·qSubBuckets) ≈ 1.6% — at every scale
// from tens of nanoseconds to minutes, using a single flat array of
// qTotal counters.
const (
	// qSubBuckets is the linear subdivision per power-of-two range; the
	// worst-case relative error of a quantile estimate is
	// 1/(2·qSubBuckets).
	qSubBuckets = 32
	// qMinExp/qMaxExp bound the binary exponent (Frexp convention:
	// v ∈ [2^(e-1), 2^e)). 2^-25 ≈ 30ns up to 2^9 = 512s covers
	// everything a turn or an HTTP request can take; values outside
	// clamp to the first/last bucket.
	qMinExp = -24
	qMaxExp = 9
	qRanges = qMaxExp - qMinExp + 1
	qTotal  = qRanges * qSubBuckets
)

// qIndex maps a value to its bucket index.
func qIndex(v float64) int {
	if v <= 0 || math.IsNaN(v) {
		return 0
	}
	frac, exp := math.Frexp(v) // v = frac × 2^exp, frac ∈ [0.5, 1)
	if exp < qMinExp {
		return 0
	}
	if exp > qMaxExp {
		return qTotal - 1
	}
	sub := int((frac - 0.5) * 2 * qSubBuckets)
	if sub >= qSubBuckets { // frac == nextafter(1, 0) rounding guard
		sub = qSubBuckets - 1
	}
	return (exp-qMinExp)*qSubBuckets + sub
}

// qBounds returns the [lo, hi) value range of bucket i.
func qBounds(i int) (lo, hi float64) {
	exp := qMinExp + i/qSubBuckets
	sub := i % qSubBuckets
	base := math.Ldexp(1, exp-1) // 2^(exp-1)
	width := base / qSubBuckets
	lo = base + float64(sub)*width
	return lo, lo + width
}

// QuantileHistogram is a concurrency-safe log-linear histogram with
// bounded-error quantile extraction. The zero value is ready to use.
// Observe is lock-free (atomic adds); Quantile/Merge/Snapshot read the
// counters atomically and may observe a value concurrently being added —
// the usual monotonic-scrape semantics.
type QuantileHistogram struct {
	counts [qTotal]atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-updated
	max    atomic.Uint64 // float64 bits (values are non-negative)
}

// Observe records one value.
func (h *QuantileHistogram) Observe(v float64) {
	h.counts[qIndex(v)].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			break
		}
	}
	for {
		old := h.max.Load()
		if v <= math.Float64frombits(old) {
			break
		}
		if h.max.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
}

// Count returns the number of observations.
func (h *QuantileHistogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *QuantileHistogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Max returns the largest observed value (0 when empty).
func (h *QuantileHistogram) Max() float64 { return math.Float64frombits(h.max.Load()) }

// Mean returns the arithmetic mean (0 when empty).
func (h *QuantileHistogram) Mean() float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return h.Sum() / float64(n)
}

// Quantile returns the q-quantile estimate (q in [0,1]): the midpoint of
// the bucket holding the rank-⌈q·n⌉ observation, within half a bucket
// width of an actual observation. Returns 0 when empty.
func (h *QuantileHistogram) Quantile(q float64) float64 {
	total := uint64(0)
	var counts [qTotal]uint64
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
		total += counts[i]
	}
	return quantileOf(&counts, total, q)
}

// quantileOf extracts a quantile from a plain counts array.
func quantileOf(counts *[qTotal]uint64, total uint64, q float64) float64 {
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(math.Ceil(q * float64(total)))
	if rank == 0 {
		rank = 1
	}
	cum := uint64(0)
	for i := 0; i < qTotal; i++ {
		cum += counts[i]
		if cum >= rank {
			lo, hi := qBounds(i)
			return (lo + hi) / 2
		}
	}
	lo, hi := qBounds(qTotal - 1)
	return (lo + hi) / 2
}

// Merge adds o's observations into h. Both histograms share the package's
// fixed geometry, so merging is bucket-wise addition.
func (h *QuantileHistogram) Merge(o *QuantileHistogram) {
	if o == nil {
		return
	}
	for i := range o.counts {
		if n := o.counts[i].Load(); n > 0 {
			h.counts[i].Add(n)
		}
	}
	h.count.Add(o.count.Load())
	add := o.Sum()
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + add)
		if h.sum.CompareAndSwap(old, next) {
			break
		}
	}
	for {
		old := h.max.Load()
		om := o.Max()
		if om <= math.Float64frombits(old) {
			break
		}
		if h.max.CompareAndSwap(old, math.Float64bits(om)) {
			break
		}
	}
}

// Reset zeroes the histogram in place (for window rotation).
func (h *QuantileHistogram) Reset() {
	for i := range h.counts {
		h.counts[i].Store(0)
	}
	h.count.Store(0)
	h.sum.Store(0)
	h.max.Store(0)
}

// QuantileSnapshot is an immutable point-in-time copy of a
// QuantileHistogram, for serialization or repeated quantile reads at a
// consistent state.
type QuantileSnapshot struct {
	counts [qTotal]uint64
	total  uint64
	sum    float64
	max    float64
}

// Snapshot copies the current counters.
func (h *QuantileHistogram) Snapshot() *QuantileSnapshot {
	s := &QuantileSnapshot{sum: h.Sum(), max: h.Max()}
	for i := range h.counts {
		s.counts[i] = h.counts[i].Load()
		s.total += s.counts[i]
	}
	return s
}

// Quantile reads a quantile from the snapshot.
func (s *QuantileSnapshot) Quantile(q float64) float64 { return quantileOf(&s.counts, s.total, q) }

// Count returns the snapshot's observation count.
func (s *QuantileSnapshot) Count() uint64 { return s.total }

// Sum returns the snapshot's value sum.
func (s *QuantileSnapshot) Sum() float64 { return s.sum }

// Max returns the snapshot's largest value.
func (s *QuantileSnapshot) Max() float64 { return s.max }

// RollingQuantile is a time-windowed QuantileHistogram: observations land
// in one of a ring of slot histograms keyed by wall-clock epoch, and
// quantile reads merge only the slots still inside the window. This is
// what live gauges want — "p99 over the last 60 seconds", decaying as
// traffic moves on — where the cumulative histogram would average the
// spike away against hours of quiet.
type RollingQuantile struct {
	mu      sync.Mutex
	slots   []QuantileHistogram
	epochs  []int64
	slotDur time.Duration
	now     func() time.Time
	scratch QuantileHistogram
}

// NewRollingQuantile builds a window of the given span split into n
// slots (the window advances with slot granularity; more slots = smoother
// decay, slightly more merge work per read). n < 2 selects 2.
func NewRollingQuantile(window time.Duration, n int) *RollingQuantile {
	if n < 2 {
		n = 2
	}
	if window <= 0 {
		window = time.Minute
	}
	return &RollingQuantile{
		slots:   make([]QuantileHistogram, n),
		epochs:  make([]int64, n),
		slotDur: window / time.Duration(n),
		now:     time.Now,
	}
}

// SetClock overrides the time source (tests).
func (r *RollingQuantile) SetClock(now func() time.Time) {
	r.mu.Lock()
	r.now = now
	r.mu.Unlock()
}

// epoch returns the current slot epoch.
func (r *RollingQuantile) epoch() int64 {
	return r.now().UnixNano() / int64(r.slotDur)
}

// Observe records one value into the current slot.
func (r *RollingQuantile) Observe(v float64) {
	r.mu.Lock()
	e := r.epoch()
	idx := int(e % int64(len(r.slots)))
	if r.epochs[idx] != e {
		r.slots[idx].Reset()
		r.epochs[idx] = e
	}
	r.slots[idx].Observe(v)
	r.mu.Unlock()
}

// merged combines the live slots into the scratch histogram. Caller holds
// r.mu.
func (r *RollingQuantile) merged() *QuantileHistogram {
	e := r.epoch()
	r.scratch.Reset()
	for i := range r.slots {
		if e-r.epochs[i] < int64(len(r.slots)) && r.epochs[i] != 0 {
			r.scratch.Merge(&r.slots[i])
		}
	}
	return &r.scratch
}

// Quantile returns the q-quantile over the live window (0 when empty).
func (r *RollingQuantile) Quantile(q float64) float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.merged().Quantile(q)
}

// Count returns the number of observations in the live window.
func (r *RollingQuantile) Count() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.merged().Count()
}
