package eval

import (
	"fmt"
	"io"

	"ontoconv/internal/agent"
	"ontoconv/internal/core"
	"ontoconv/internal/sim"
)

// LogLearningResult is the A6 extension experiment: close the loop the
// paper leaves as future work (§9) by mining failed interactions from one
// usage period, augmenting the training set with them, retraining, and
// measuring the next period.
type LogLearningResult struct {
	MinedExamples   int
	BeforeAccuracy  float64
	AfterAccuracy   float64
	BeforeSuccess   float64
	AfterSuccess    float64
	PeriodOne       int
	PeriodTwo       int
	IntentsImproved []string
}

// AblationLogLearning runs two simulated usage periods: period one against
// the original agent (its failures are mined), period two against both the
// original and the retrained agent, on identical seeds.
func AblationLogLearning(e *Env, interactions int) (LogLearningResult, error) {
	if interactions <= 0 {
		interactions = 4000
	}
	r := LogLearningResult{PeriodOne: interactions, PeriodTwo: interactions}

	// Period one: observe failures.
	p1 := e.SimConfig
	p1.Interactions = interactions
	log1 := sim.Run(e.Agent, p1)
	mined := sim.MineFailures(log1, 50)
	for _, xs := range mined {
		r.MinedExamples += len(xs)
	}
	r.IntentsImproved = sim.FailureIntents(mined)
	if len(r.IntentsImproved) > 5 {
		r.IntentsImproved = r.IntentsImproved[:5]
	}

	// Retrain on the augmented space.
	augmented := cloneSpace(e.Space)
	if err := core.AugmentFromPriorQueries(augmented, mined); err != nil {
		return r, err
	}
	retrained, err := agent.New(augmented, e.Base, agent.Options{})
	if err != nil {
		return r, err
	}

	// Period two: a different seed, same workload model, both agents.
	p2 := p1
	p2.Seed = p1.Seed + 1
	acc := func(l *sim.Log) float64 {
		c := 0
		for _, x := range l.Interactions {
			if x.Correct {
				c++
			}
		}
		return float64(c) / float64(len(l.Interactions))
	}
	before := sim.Run(e.Agent, p2)
	after := sim.Run(retrained, p2)
	r.BeforeAccuracy = acc(before)
	r.AfterAccuracy = acc(after)
	r.BeforeSuccess = before.OverallSuccessRate()
	r.AfterSuccess = after.OverallSuccessRate()
	return r, nil
}

// cloneSpace deep-copies the mutable parts of a conversation space so the
// augmentation does not touch the shared environment.
func cloneSpace(s *core.Space) *core.Space {
	out := *s
	out.Intents = make([]core.Intent, len(s.Intents))
	for i, in := range s.Intents {
		cp := in
		cp.Examples = append([]string(nil), in.Examples...)
		out.Intents[i] = cp
	}
	return &out
}

// WriteLogLearning renders A6.
func WriteLogLearning(w io.Writer, r LogLearningResult) {
	fmt.Fprintln(w, "== A6: learning from usage logs (paper §9 future work) ==")
	fmt.Fprintf(w, "mined %d failed utterances from a %d-interaction period\n", r.MinedExamples, r.PeriodOne)
	fmt.Fprintf(w, "%-22s %14s %14s\n", "agent", "accuracy", "success rate")
	fmt.Fprintf(w, "%-22s %13.1f%% %13.1f%%\n", "before retraining", r.BeforeAccuracy*100, r.BeforeSuccess*100)
	fmt.Fprintf(w, "%-22s %13.1f%% %13.1f%%\n", "after retraining", r.AfterAccuracy*100, r.AfterSuccess*100)
	fmt.Fprintf(w, "most-improved intents: %v\n", r.IntentsImproved)
}
