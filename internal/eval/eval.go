// Package eval regenerates every table and figure of the paper's
// evaluation (§7) plus the ablations called out in DESIGN.md, rendering
// each as a text table. All experiments are deterministic given the
// configured seeds.
package eval

import (
	"fmt"
	"io"
	"strings"

	"ontoconv/internal/agent"
	"ontoconv/internal/core"
	"ontoconv/internal/kb"
	"ontoconv/internal/medkb"
	"ontoconv/internal/nlu"
	"ontoconv/internal/ontology"
	"ontoconv/internal/sim"
)

// Env bundles the artifacts every experiment runs against.
type Env struct {
	Base  *kb.KB
	Onto  *ontology.Ontology
	Space *core.Space
	Agent *agent.Agent
	// Log is the simulated 7-month usage log (lazily built).
	Log *sim.Log
	// SimConfig drives the usage simulation.
	SimConfig sim.Config
}

// NewEnv builds the full MDX environment: KB, ontology, bootstrapped
// space, trained agent.
func NewEnv() (*Env, error) {
	base, onto, space, err := medkb.Bootstrap()
	if err != nil {
		return nil, err
	}
	ag, err := agent.New(space, base, agent.Options{})
	if err != nil {
		return nil, err
	}
	return &Env{Base: base, Onto: onto, Space: space, Agent: ag, SimConfig: sim.DefaultConfig()}, nil
}

// UsageLog simulates (once) and returns the usage log.
func (e *Env) UsageLog() *sim.Log {
	if e.Log == nil {
		e.Log = sim.Run(e.Agent, e.SimConfig)
	}
	return e.Log
}

// ---------------------------------------------------------------------------
// E1: system inventory counts (§6.1)
// ---------------------------------------------------------------------------

// E1Result reports the bootstrap inventory the paper gives in §6.1.
type E1Result struct {
	OntologyStats    ontology.Stats
	IntentsByKind    map[core.PatternKind]int
	KBIntents        int
	TotalIntents     int
	Entities         int
	TrainingExamples int
	KeyConcepts      []string
	Dependents       int
	Tables           int
	Rows             int
}

// E1 computes the inventory.
func E1(e *Env) E1Result {
	r := E1Result{
		OntologyStats: e.Onto.Stats(),
		IntentsByKind: e.Space.CountByKind(),
		TotalIntents:  len(e.Space.Intents),
		Entities:      len(e.Space.Entities),
		KeyConcepts:   e.Space.KeyConcepts,
		Dependents:    len(e.Space.DependentConcepts),
		Tables:        len(e.Base.TableNames()),
	}
	r.KBIntents = r.IntentsByKind[core.LookupPattern] +
		r.IntentsByKind[core.DirectRelationPattern] +
		r.IntentsByKind[core.IndirectRelationPattern]
	r.TrainingExamples = len(e.Space.AllExamples())
	for _, t := range e.Base.TableNames() {
		r.Rows += e.Base.Table(t).Len()
	}
	return r
}

// WriteE1 renders E1 with the paper's numbers alongside.
func WriteE1(w io.Writer, r E1Result) {
	fmt.Fprintln(w, "== E1: bootstrap inventory (paper §6.1) ==")
	fmt.Fprintf(w, "%-42s %10s %10s\n", "quantity", "paper", "measured")
	fmt.Fprintf(w, "%-42s %10d %10d\n", "ontology concepts", 59, r.OntologyStats.Concepts)
	fmt.Fprintf(w, "%-42s %10d %10d\n", "ontology data properties", 178, r.OntologyStats.DataProperties)
	fmt.Fprintf(w, "%-42s %10d %10d\n", "ontology relationships", 58, r.OntologyStats.ObjectProperties+r.OntologyStats.IsA+r.OntologyStats.Unions)
	fmt.Fprintf(w, "%-42s %10d %10d\n", "KB intents (lookup+relationship)", 22, r.KBIntents)
	fmt.Fprintf(w, "%-42s %10d %10d\n", "  lookup intents", 14, r.IntentsByKind[core.LookupPattern])
	fmt.Fprintf(w, "%-42s %10d %10d\n", "  relationship intents", 8,
		r.IntentsByKind[core.DirectRelationPattern]+r.IntentsByKind[core.IndirectRelationPattern])
	fmt.Fprintf(w, "%-42s %10d %10d\n", "conversation-management intents", 14, r.IntentsByKind[core.ConversationPattern])
	fmt.Fprintf(w, "%-42s %10d %10d\n", "entities", 52, r.Entities)
	fmt.Fprintf(w, "%-42s %10s %10d\n", "training examples", "-", r.TrainingExamples)
	fmt.Fprintf(w, "%-42s %10s %10d\n", "KB tables", "-", r.Tables)
	fmt.Fprintf(w, "%-42s %10s %10d\n", "KB rows", "-", r.Rows)
	fmt.Fprintf(w, "key concepts: %s\n", strings.Join(r.KeyConcepts, ", "))
}

// ---------------------------------------------------------------------------
// Table 5: intent usage and F1 (§7.1-7.2)
// ---------------------------------------------------------------------------

// Table5Row is one intent's line of Table 5.
type Table5Row struct {
	Intent string
	Usage  float64
	F1     float64
}

// Table5Result is the reproduced Table 5.
type Table5Result struct {
	Rows    []Table5Row // top-10 by usage
	AvgF1   float64     // macro-F1 across all intents (paper: 0.85)
	Intents int
	// Eval holds the full classifier evaluation for inspection.
	Eval nlu.Evaluation
}

// paperTable5 holds the published usage/F1 values for side-by-side
// rendering.
var paperTable5 = []struct {
	intent string
	usage  float64
	f1     float64
}{
	{"Drug Dosage for Condition", 0.15, 0.85},
	{"Administration of Drug", 0.12, 0.88},
	{"IV Compatibility of Drug", 0.11, 0.86},
	{"Drugs That Treat Condition", 0.10, 0.82},
	{"Uses of Drug", 0.09, 0.99},
	{"Adverse Effects of Drug", 0.05, 0.84},
	{"Drug-Drug Interactions", 0.04, 0.88},
	{"DRUG_GENERAL", 0.04, 0.65},
	{"Dose Adjustments for Drug", 0.03, 0.95},
	{"Regulatory Status for Drug", 0.02, 0.93},
}

// Table5 reproduces the table: the classifier is trained on a stratified
// 80% split of the bootstrap-generated + SME-augmented examples and scored
// on the held-out 20% (§7.1); usage shares come from the simulated log.
func Table5(e *Env) Table5Result {
	var examples []nlu.Example
	for _, te := range e.Space.AllExamples() {
		examples = append(examples, nlu.Example{Text: te.Text, Intent: te.Intent})
	}
	train, test := nlu.TrainTestSplit(examples, 5)
	clf := nlu.NewLogisticRegression()
	if err := clf.Train(train); err != nil {
		return Table5Result{}
	}
	ev := nlu.Evaluate(clf, test)

	res := Table5Result{AvgF1: ev.MacroF1, Eval: ev}
	res.Intents = len(ev.PerIntent)
	for _, st := range e.UsageLog().TopN(10) {
		res.Rows = append(res.Rows, Table5Row{
			Intent: st.Intent,
			Usage:  st.Share,
			F1:     ev.IntentF1(st.Intent),
		})
	}
	return res
}

// WriteTable5 renders the reproduced table next to the published one.
func WriteTable5(w io.Writer, r Table5Result) {
	fmt.Fprintln(w, "== Table 5: top-10 intent usage and F1 ==")
	fmt.Fprintf(w, "%-34s %12s %12s %10s %10s\n", "intent", "paper usage", "meas usage", "paper F1", "meas F1")
	paper := map[string][2]float64{}
	for _, p := range paperTable5 {
		paper[p.intent] = [2]float64{p.usage, p.f1}
	}
	for _, row := range r.Rows {
		pu, pf := "-", "-"
		if v, ok := paper[row.Intent]; ok {
			pu = fmt.Sprintf("%.0f%%", v[0]*100)
			pf = fmt.Sprintf("%.2f", v[1])
		}
		fmt.Fprintf(w, "%-34s %12s %11.1f%% %10s %10.2f\n", row.Intent, pu, row.Usage*100, pf, row.F1)
	}
	fmt.Fprintf(w, "average F1 across %d intents: paper 0.85, measured %.2f\n", r.Intents, r.AvgF1)
}

// ---------------------------------------------------------------------------
// E3 + Figure 11: success rates from user feedback (§7.2)
// ---------------------------------------------------------------------------

// Fig11Result is the per-intent success-rate figure plus the overall rate.
type Fig11Result struct {
	Overall   float64
	PerIntent []sim.IntentStats
}

// Fig11 computes success rates from the simulated user feedback.
func Fig11(e *Env) Fig11Result {
	log := e.UsageLog()
	return Fig11Result{Overall: log.OverallSuccessRate(), PerIntent: log.TopN(10)}
}

var paperFig11 = map[string]float64{
	"Drug Dosage for Condition":  0.970,
	"Administration of Drug":     0.976,
	"IV Compatibility of Drug":   0.977,
	"Drugs That Treat Condition": 0.986,
	"Uses of Drug":               0.988,
	"Adverse Effects of Drug":    0.989,
	"Drug-Drug Interactions":     0.983,
	"DRUG_GENERAL":               0.964,
	"Dose Adjustments for Drug":  0.990,
	"Regulatory Status for Drug": 0.970,
}

// WriteFig11 renders the figure as a table with bars.
func WriteFig11(w io.Writer, r Fig11Result) {
	fmt.Fprintln(w, "== Figure 11: success rate per intent (user feedback, top-10) ==")
	fmt.Fprintf(w, "overall success rate: paper 96.3%%, measured %.1f%%\n", r.Overall*100)
	fmt.Fprintf(w, "%-34s %8s %8s %8s  %s\n", "intent", "n", "paper", "meas", "")
	for _, st := range r.PerIntent {
		p := "-"
		if v, ok := paperFig11[st.Intent]; ok {
			p = fmt.Sprintf("%.1f%%", v*100)
		}
		fmt.Fprintf(w, "%-34s %8d %8s %7.1f%%  %s\n", st.Intent, st.Interactions, p, st.SuccessRate*100, bar(st.SuccessRate, 30))
	}
}

// ---------------------------------------------------------------------------
// Figure 12: SME-judged sample (§7.2)
// ---------------------------------------------------------------------------

// Fig12Result compares user-reported vs SME-judged success on the 10%
// sample.
type Fig12Result struct {
	Sample sim.SMESample
}

// Fig12 evaluates the SME-judged sample.
func Fig12(e *Env) Fig12Result {
	return Fig12Result{Sample: e.UsageLog().SMEStats()}
}

var paperFig12 = map[string]float64{
	"IV Compatibility of Drug":   0.937,
	"Administration of Drug":     0.857,
	"Uses of Drug":               0.952,
	"Drug Dosage for Condition":  0.922,
	"Adverse Effects of Drug":    0.977,
	"Drug-Drug Interactions":     0.966,
	"Drugs That Treat Condition": 0.952,
	"Pharmacokinetics":           0.839,
	"Dose Adjustments for Drug":  0.986,
	"DRUG_GENERAL":               0.902,
}

// WriteFig12 renders the comparison.
func WriteFig12(w io.Writer, r Fig12Result) {
	s := r.Sample
	fmt.Fprintln(w, "== Figure 12: success rate per intent (SME-judged 10% sample) ==")
	fmt.Fprintf(w, "sample size: %d interactions\n", s.Size)
	fmt.Fprintf(w, "user-feedback success on sample: paper 97.9%%, measured %.1f%%\n", s.UserSuccessRate*100)
	fmt.Fprintf(w, "SME-judged success on sample:    paper 90.8%%, measured %.1f%%\n", s.SMESuccessRate*100)
	fmt.Fprintf(w, "%-34s %8s %8s %8s  %s\n", "intent", "n", "paper", "meas", "")
	n := len(s.PerIntent)
	if n > 10 {
		n = 10
	}
	for _, st := range s.PerIntent[:n] {
		p := "-"
		if v, ok := paperFig12[st.Intent]; ok {
			p = fmt.Sprintf("%.1f%%", v*100)
		}
		fmt.Fprintf(w, "%-34s %8d %8s %7.1f%%  %s\n", st.Intent, st.Interactions, p, st.SuccessRate*100, bar(st.SuccessRate, 30))
	}
}

// ---------------------------------------------------------------------------
// helpers
// ---------------------------------------------------------------------------

func bar(frac float64, width int) string {
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	n := int(frac*float64(width) + 0.5)
	return strings.Repeat("#", n) + strings.Repeat(".", width-n)
}
