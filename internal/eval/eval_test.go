package eval

import (
	"bytes"
	"strings"
	"sync"
	"testing"

	"ontoconv/internal/core"
)

var (
	once   sync.Once
	env    *Env
	envErr error
)

func fixture(t *testing.T) *Env {
	t.Helper()
	once.Do(func() {
		env, envErr = NewEnv()
		if envErr == nil {
			// keep tests fast; experiments default to 20000
			env.SimConfig.Interactions = 2500
		}
	})
	if envErr != nil {
		t.Fatal(envErr)
	}
	return env
}

func TestE1Inventory(t *testing.T) {
	e := fixture(t)
	r := E1(e)
	if r.OntologyStats.Concepts < 30 {
		t.Fatalf("concepts = %d", r.OntologyStats.Concepts)
	}
	if r.IntentsByKind[core.ConversationPattern] != 14 {
		t.Fatalf("CM intents = %d, want the paper's 14", r.IntentsByKind[core.ConversationPattern])
	}
	if r.KBIntents < 20 {
		t.Fatalf("KB intents = %d", r.KBIntents)
	}
	if r.Entities < 40 || r.TrainingExamples < 500 {
		t.Fatalf("entities=%d examples=%d", r.Entities, r.TrainingExamples)
	}
	var buf bytes.Buffer
	WriteE1(&buf, r)
	for _, want := range []string{"paper", "measured", "59", "key concepts"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("E1 rendering missing %q", want)
		}
	}
}

func TestTable5(t *testing.T) {
	e := fixture(t)
	r := Table5(e)
	if len(r.Rows) != 10 {
		t.Fatalf("rows = %d, want top-10", len(r.Rows))
	}
	// usage shares descending
	for i := 1; i < len(r.Rows); i++ {
		if r.Rows[i].Usage > r.Rows[i-1].Usage+1e-9 {
			t.Fatalf("usage not descending: %+v", r.Rows)
		}
	}
	// paper avg F1 = 0.85; ours should be at least in that region
	if r.AvgF1 < 0.75 || r.AvgF1 > 1.0 {
		t.Fatalf("avg F1 = %.3f", r.AvgF1)
	}
	// the headline intents must appear
	names := map[string]bool{}
	for _, row := range r.Rows {
		names[row.Intent] = true
	}
	for _, want := range []string{"Drug Dosage for Condition", "Drugs That Treat Condition"} {
		if !names[want] {
			t.Errorf("Table 5 missing %q: %+v", want, r.Rows)
		}
	}
	var buf bytes.Buffer
	WriteTable5(&buf, r)
	if !strings.Contains(buf.String(), "average F1") {
		t.Error("Table 5 rendering incomplete")
	}
}

func TestFig11(t *testing.T) {
	e := fixture(t)
	r := Fig11(e)
	if r.Overall < 0.9 {
		t.Fatalf("overall = %.3f", r.Overall)
	}
	if len(r.PerIntent) != 10 {
		t.Fatalf("per intent = %d", len(r.PerIntent))
	}
	var buf bytes.Buffer
	WriteFig11(&buf, r)
	if !strings.Contains(buf.String(), "96.3%") {
		t.Error("paper overall missing from rendering")
	}
}

func TestFig12(t *testing.T) {
	e := fixture(t)
	r := Fig12(e)
	if r.Sample.Size == 0 {
		t.Fatal("empty SME sample")
	}
	if r.Sample.SMESuccessRate > r.Sample.UserSuccessRate+1e-9 {
		t.Fatalf("SME %.3f must not exceed user %.3f",
			r.Sample.SMESuccessRate, r.Sample.UserSuccessRate)
	}
	var buf bytes.Buffer
	WriteFig12(&buf, r)
	for _, want := range []string{"90.8%", "97.9%"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("rendering missing paper value %q", want)
		}
	}
}

func TestAblationClassifier(t *testing.T) {
	e := fixture(t)
	rows := AblationClassifier(e)
	if len(rows) != 2 {
		t.Fatalf("rows = %+v", rows)
	}
	for _, r := range rows {
		if r.MacroF1 <= 0.3 {
			t.Errorf("%s macroF1 = %.3f, implausible", r.Name, r.MacroF1)
		}
	}
	var buf bytes.Buffer
	WriteAblationClassifier(&buf, rows)
	if !strings.Contains(buf.String(), "naive-bayes") {
		t.Error("rendering incomplete")
	}
}

func TestAblationTrainingSize(t *testing.T) {
	e := fixture(t)
	rows, err := AblationTrainingSize(e, []int{2, 24})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %+v", rows)
	}
	if rows[0].TotalExamples >= rows[1].TotalExamples {
		t.Fatalf("budgets not increasing: %+v", rows)
	}
	// more examples must help (the paper's core premise: generated
	// training data quality/quantity drives accuracy)
	if rows[1].MacroF1 <= rows[0].MacroF1 {
		t.Fatalf("more training data should help: %+v", rows)
	}
	var buf bytes.Buffer
	WriteAblationTrainingSize(&buf, rows)
	if !strings.Contains(buf.String(), "examples/intent") {
		t.Error("rendering incomplete")
	}
}

func TestAblationSynonyms(t *testing.T) {
	e := fixture(t)
	rows, err := AblationSynonyms(e, 800)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %+v", rows)
	}
	with, without := rows[1], rows[0]
	if with.Variant != "with synonyms" || without.Variant != "without synonyms" {
		t.Fatalf("rows = %+v", rows)
	}
	if with.Accuracy <= without.Accuracy {
		t.Fatalf("synonyms should help: with=%.3f without=%.3f", with.Accuracy, without.Accuracy)
	}
	var buf bytes.Buffer
	WriteAblationSynonyms(&buf, rows)
	if !strings.Contains(buf.String(), "synonym") {
		t.Error("rendering incomplete")
	}
}

func TestCompareBaseline(t *testing.T) {
	e := fixture(t)
	r := CompareBaseline(e, 800)
	if r.AgentAccuracy <= r.BaselineAccuracy {
		t.Fatalf("agent %.3f must beat baseline %.3f", r.AgentAccuracy, r.BaselineAccuracy)
	}
	if r.AgentSuccess <= r.BaselineSuccess {
		t.Fatalf("agent success %.3f must beat baseline %.3f", r.AgentSuccess, r.BaselineSuccess)
	}
	var buf bytes.Buffer
	WriteBaselineComparison(&buf, r)
	if !strings.Contains(buf.String(), "keyword baseline") {
		t.Error("rendering incomplete")
	}
}

func TestAblationCentrality(t *testing.T) {
	e := fixture(t)
	rows := AblationCentrality(e)
	if len(rows) != 4 {
		t.Fatalf("rows = %+v", rows)
	}
	for _, r := range rows {
		found := false
		for _, k := range r.KeyConcepts {
			if k == "Drug" {
				found = true
			}
		}
		if !found {
			t.Errorf("metric %s missed the Drug hub: %v", r.Metric, r.KeyConcepts)
		}
	}
	var buf bytes.Buffer
	WriteAblationCentrality(&buf, rows)
	if !strings.Contains(buf.String(), "degree") {
		t.Error("rendering incomplete")
	}
}
