package eval

import (
	"fmt"
	"io"

	"ontoconv/internal/agent"
	"ontoconv/internal/core"
	"ontoconv/internal/graph"
	"ontoconv/internal/medkb"
	"ontoconv/internal/nlu"
	"ontoconv/internal/sim"
)

// ---------------------------------------------------------------------------
// A1: classifier choice
// ---------------------------------------------------------------------------

// ClassifierAblation compares intent classifiers on the Table 5 split.
type ClassifierAblation struct {
	Name     string
	Accuracy float64
	MacroF1  float64
}

// AblationClassifier evaluates naive Bayes vs logistic regression.
func AblationClassifier(e *Env) []ClassifierAblation {
	var examples []nlu.Example
	for _, te := range e.Space.AllExamples() {
		examples = append(examples, nlu.Example{Text: te.Text, Intent: te.Intent})
	}
	train, test := nlu.TrainTestSplit(examples, 5)
	var out []ClassifierAblation
	for _, c := range []struct {
		name string
		clf  nlu.Classifier
	}{
		{"naive-bayes", nlu.NewNaiveBayes(1.0)},
		{"logistic-regression", nlu.NewLogisticRegression()},
	} {
		if err := c.clf.Train(train); err != nil {
			continue
		}
		ev := nlu.Evaluate(c.clf, test)
		out = append(out, ClassifierAblation{Name: c.name, Accuracy: ev.Accuracy, MacroF1: ev.MacroF1})
	}
	return out
}

// WriteAblationClassifier renders A1.
func WriteAblationClassifier(w io.Writer, rows []ClassifierAblation) {
	fmt.Fprintln(w, "== A1: classifier ablation (held-out split) ==")
	fmt.Fprintf(w, "%-24s %10s %10s\n", "classifier", "accuracy", "macro-F1")
	for _, r := range rows {
		fmt.Fprintf(w, "%-24s %10.3f %10.3f\n", r.Name, r.Accuracy, r.MacroF1)
	}
}

// ---------------------------------------------------------------------------
// A2: training-set size sweep
// ---------------------------------------------------------------------------

// SizeAblation is one point of the examples-per-intent sweep.
type SizeAblation struct {
	ExamplesPerIntent int
	TotalExamples     int
	Accuracy          float64
	MacroF1           float64
}

// AblationTrainingSize re-runs the bootstrap at several example budgets
// and scores each classifier on a fixed evaluation set generated at the
// largest budget (held out by split).
func AblationTrainingSize(e *Env, sizes []int) ([]SizeAblation, error) {
	if len(sizes) == 0 {
		sizes = []int{2, 5, 10, 25, 50, 100}
	}
	// Fixed test set: hold out from the default-budget space.
	var all []nlu.Example
	for _, te := range e.Space.AllExamples() {
		all = append(all, nlu.Example{Text: te.Text, Intent: te.Intent})
	}
	_, test := nlu.TrainTestSplit(all, 5)

	var out []SizeAblation
	for _, n := range sizes {
		cfg := medkb.BootstrapConfig(e.Base)
		cfg.ExamplesPerIntent = n
		space, err := core.Bootstrap(e.Onto, e.Base, cfg)
		if err != nil {
			return nil, err
		}
		var train []nlu.Example
		for _, te := range space.AllExamples() {
			train = append(train, nlu.Example{Text: te.Text, Intent: te.Intent})
		}
		clf := nlu.NewLogisticRegression()
		if err := clf.Train(train); err != nil {
			return nil, err
		}
		ev := nlu.Evaluate(clf, test)
		out = append(out, SizeAblation{
			ExamplesPerIntent: n,
			TotalExamples:     len(train),
			Accuracy:          ev.Accuracy,
			MacroF1:           ev.MacroF1,
		})
	}
	return out, nil
}

// WriteAblationTrainingSize renders A2.
func WriteAblationTrainingSize(w io.Writer, rows []SizeAblation) {
	fmt.Fprintln(w, "== A2: training-example budget sweep ==")
	fmt.Fprintf(w, "%14s %14s %10s %10s\n", "examples/intent", "total", "accuracy", "macro-F1")
	for _, r := range rows {
		fmt.Fprintf(w, "%14d %14d %10.3f %10.3f\n", r.ExamplesPerIntent, r.TotalExamples, r.Accuracy, r.MacroF1)
	}
}

// ---------------------------------------------------------------------------
// A3: synonym dictionaries on/off
// ---------------------------------------------------------------------------

// SynonymAblation compares end-to-end success with and without the SME
// synonym dictionaries (the paper's "side effects" lesson, §6.3).
type SynonymAblation struct {
	Variant        string
	OverallSuccess float64
	Accuracy       float64
}

// AblationSynonyms runs a reduced simulation against agents built with
// and without synonyms.
func AblationSynonyms(e *Env, interactions int) ([]SynonymAblation, error) {
	if interactions <= 0 {
		interactions = 4000
	}
	simCfg := e.SimConfig
	simCfg.Interactions = interactions

	run := func(variant string, space *core.Space) (SynonymAblation, error) {
		ag, err := agent.New(space, e.Base, agent.Options{})
		if err != nil {
			return SynonymAblation{}, err
		}
		log := sim.Run(ag, simCfg)
		correct := 0
		for _, r := range log.Interactions {
			if r.Correct {
				correct++
			}
		}
		return SynonymAblation{
			Variant:        variant,
			OverallSuccess: log.OverallSuccessRate(),
			Accuracy:       float64(correct) / float64(len(log.Interactions)),
		}, nil
	}

	noSyn := medkb.BootstrapConfig(e.Base)
	noSyn.Entities.ConceptSynonyms = nil
	noSyn.Entities.InstanceSynonyms = nil
	noSyn.Entities.ValueSynonyms = nil
	spaceNo, err := core.Bootstrap(e.Onto, e.Base, noSyn)
	if err != nil {
		return nil, err
	}
	a, err := run("without synonyms", spaceNo)
	if err != nil {
		return nil, err
	}
	b, err := run("with synonyms", e.Space)
	if err != nil {
		return nil, err
	}
	return []SynonymAblation{a, b}, nil
}

// WriteAblationSynonyms renders A3.
func WriteAblationSynonyms(w io.Writer, rows []SynonymAblation) {
	fmt.Fprintln(w, "== A3: synonym dictionaries on/off (end-to-end) ==")
	fmt.Fprintf(w, "%-22s %14s %14s\n", "variant", "success rate", "accuracy")
	for _, r := range rows {
		fmt.Fprintf(w, "%-22s %13.1f%% %13.1f%%\n", r.Variant, r.OverallSuccess*100, r.Accuracy*100)
	}
}

// ---------------------------------------------------------------------------
// A4: keyword-search baseline
// ---------------------------------------------------------------------------

// BaselineComparison holds agent-vs-baseline end-to-end results on the
// identical seeded workload.
type BaselineComparison struct {
	AgentSuccess     float64
	AgentAccuracy    float64
	BaselineSuccess  float64
	BaselineAccuracy float64
	Interactions     int
}

// CompareBaseline runs the conversation agent and the keyword baseline on
// the same workload.
func CompareBaseline(e *Env, interactions int) BaselineComparison {
	cfg := e.SimConfig
	if interactions > 0 {
		cfg.Interactions = interactions
	}
	alog := sim.Run(e.Agent, cfg)
	kw := agent.NewKeywordAgent(e.Space, e.Base)
	blog := sim.RunBaseline(kw, e.Space, cfg)
	acc := func(l *sim.Log) float64 {
		c := 0
		for _, r := range l.Interactions {
			if r.Correct {
				c++
			}
		}
		return float64(c) / float64(len(l.Interactions))
	}
	return BaselineComparison{
		AgentSuccess:     alog.OverallSuccessRate(),
		AgentAccuracy:    acc(alog),
		BaselineSuccess:  blog.OverallSuccessRate(),
		BaselineAccuracy: acc(blog),
		Interactions:     cfg.Interactions,
	}
}

// WriteBaselineComparison renders A4.
func WriteBaselineComparison(w io.Writer, r BaselineComparison) {
	fmt.Fprintln(w, "== A4: conversation agent vs keyword-search baseline ==")
	fmt.Fprintf(w, "workload: %d interactions\n", r.Interactions)
	fmt.Fprintf(w, "%-24s %14s %14s\n", "system", "success rate", "accuracy")
	fmt.Fprintf(w, "%-24s %13.1f%% %13.1f%%\n", "conversation agent", r.AgentSuccess*100, r.AgentAccuracy*100)
	fmt.Fprintf(w, "%-24s %13.1f%% %13.1f%%\n", "keyword baseline", r.BaselineSuccess*100, r.BaselineAccuracy*100)
}

// ---------------------------------------------------------------------------
// A5: centrality metric for key-concept discovery
// ---------------------------------------------------------------------------

// CentralityAblation reports the key concepts each metric selects.
type CentralityAblation struct {
	Metric      graph.Metric
	KeyConcepts []string
}

// AblationCentrality runs key-concept discovery under each centrality
// metric.
func AblationCentrality(e *Env) []CentralityAblation {
	var out []CentralityAblation
	for _, m := range []graph.Metric{
		graph.MetricDegree, graph.MetricPageRank, graph.MetricBetweenness, graph.MetricCloseness,
	} {
		cfg := core.DefaultKeyConceptConfig()
		cfg.Metric = m
		an := core.AnalyzeConcepts(e.Onto, e.Base, cfg)
		out = append(out, CentralityAblation{Metric: m, KeyConcepts: an.KeyConcepts})
	}
	return out
}

// WriteAblationCentrality renders A5.
func WriteAblationCentrality(w io.Writer, rows []CentralityAblation) {
	fmt.Fprintln(w, "== A5: centrality metric for key-concept discovery ==")
	for _, r := range rows {
		fmt.Fprintf(w, "%-14s -> %v\n", r.Metric, r.KeyConcepts)
	}
}
