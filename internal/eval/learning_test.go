package eval

import (
	"bytes"
	"strings"
	"testing"
)

func TestAblationLogLearning(t *testing.T) {
	e := fixture(t)
	r, err := AblationLogLearning(e, 1500)
	if err != nil {
		t.Fatal(err)
	}
	if r.MinedExamples == 0 {
		t.Skip("no failures mined at this size")
	}
	// learning from failures must not make the system worse on the next
	// period (it nearly always improves it)
	if r.AfterAccuracy < r.BeforeAccuracy-0.01 {
		t.Fatalf("retraining hurt: before=%.3f after=%.3f", r.BeforeAccuracy, r.AfterAccuracy)
	}
	var buf bytes.Buffer
	WriteLogLearning(&buf, r)
	if !strings.Contains(buf.String(), "after retraining") {
		t.Error("rendering incomplete")
	}
}

func TestCloneSpaceIsolation(t *testing.T) {
	e := fixture(t)
	cp := cloneSpace(e.Space)
	cp.Intents[0].Examples = append(cp.Intents[0].Examples, "MUTATION")
	for _, ex := range e.Space.Intents[0].Examples {
		if ex == "MUTATION" {
			t.Fatal("cloneSpace leaked a mutation into the original")
		}
	}
}
