package agent

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
)

// Server exposes the agent over HTTP the way the deployed system is
// hosted (§7: "All the components of Conversational MDX are hosted on IBM
// Cloud"). It manages one persistent conversation context per session ID
// and mirrors the UI's thumbs-up/down feedback buttons.
//
//	POST /chat      {"session":"s1","message":"precautions for aspirin"}
//	             -> {"session":"s1","reply":"…","intent":"…","closed":false}
//	POST /feedback  {"session":"s1","thumbs":"down"}
//	GET  /context?session=s1
//	GET  /healthz
type Server struct {
	agent *Agent

	mu       sync.Mutex
	sessions map[string]*Session
}

// NewServer wraps an agent for HTTP serving.
func NewServer(a *Agent) *Server {
	return &Server{agent: a, sessions: make(map[string]*Session)}
}

// Handler returns the HTTP handler tree.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/chat", s.handleChat)
	mux.HandleFunc("/feedback", s.handleFeedback)
	mux.HandleFunc("/context", s.handleContext)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	return mux
}

// ChatRequest is the /chat request body.
type ChatRequest struct {
	Session string `json:"session"`
	Message string `json:"message"`
}

// ChatResponse is the /chat response body.
type ChatResponse struct {
	Session string `json:"session"`
	Reply   string `json:"reply"`
	Intent  string `json:"intent,omitempty"`
	Closed  bool   `json:"closed"`
}

// FeedbackRequest is the /feedback request body.
type FeedbackRequest struct {
	Session string `json:"session"`
	Thumbs  string `json:"thumbs"` // "up" or "down"
}

// session returns (creating if needed) the named session.
func (s *Server) session(id string) *Session {
	s.mu.Lock()
	defer s.mu.Unlock()
	sess, ok := s.sessions[id]
	if !ok {
		sess = NewSession()
		s.sessions[id] = sess
	}
	return sess
}

func (s *Server) handleChat(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	var req ChatRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	if req.Session == "" || strings.TrimSpace(req.Message) == "" {
		http.Error(w, "session and message are required", http.StatusBadRequest)
		return
	}
	sess := s.session(req.Session)
	// Serialize turns within a session; different sessions proceed
	// concurrently (the agent itself is read-only at serving time).
	s.mu.Lock()
	reply := s.agent.Respond(sess, req.Message)
	last := sess.LastTurn()
	closed := sess.Closed()
	if closed {
		delete(s.sessions, req.Session)
	}
	s.mu.Unlock()

	resp := ChatResponse{Session: req.Session, Reply: reply, Closed: closed}
	if last != nil {
		resp.Intent = last.Intent
	}
	writeJSON(w, resp)
}

func (s *Server) handleFeedback(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	var req FeedbackRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	if req.Thumbs != "up" && req.Thumbs != "down" {
		http.Error(w, `thumbs must be "up" or "down"`, http.StatusBadRequest)
		return
	}
	s.mu.Lock()
	sess, ok := s.sessions[req.Session]
	if ok {
		sess.Feedback(req.Thumbs == "up")
	}
	s.mu.Unlock()
	if !ok {
		http.Error(w, "unknown session", http.StatusNotFound)
		return
	}
	writeJSON(w, map[string]string{"status": "recorded"})
}

func (s *Server) handleContext(w http.ResponseWriter, r *http.Request) {
	id := r.URL.Query().Get("session")
	s.mu.Lock()
	sess, ok := s.sessions[id]
	var payload map[string]interface{}
	if ok {
		payload = map[string]interface{}{
			"session":  id,
			"intent":   sess.Ctx.Intent,
			"bindings": sess.Ctx.Bindings(),
			"turns":    len(sess.Turns),
		}
	}
	s.mu.Unlock()
	if !ok {
		http.Error(w, "unknown session", http.StatusNotFound)
		return
	}
	writeJSON(w, payload)
}

func writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
