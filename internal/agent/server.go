package agent

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ontoconv/internal/bundle"
	"ontoconv/internal/dialogue"
	"ontoconv/internal/obs"
)

// DefaultIdleTTL is how long an abandoned session is kept before the
// sweeper evicts it.
const DefaultIdleTTL = 30 * time.Minute

// DefaultWorkspace is the tenant bare (un-prefixed) routes resolve to, so
// pre-workspace clients keep working unchanged.
const DefaultWorkspace = "default"

// ErrUnknownWorkspace marks requests naming a tenant the server does not
// host; the HTTP layer maps it to 404.
var ErrUnknownWorkspace = errors.New("agent: unknown workspace")

// WorkspaceResolver maps tenant names to live agents. Implementations
// (internal/workspace) may construct agents lazily and bound how many stay
// resident; Resolve must return an agent that remains safe to use for the
// duration of the request even if the resolver concurrently evicts the
// tenant (the agent's runtime is immutable behind its own pointer).
type WorkspaceResolver interface {
	// Resolve returns the tenant's agent, constructing it if needed.
	// Unknown tenants return an error wrapping ErrUnknownWorkspace.
	Resolve(name string) (*Agent, error)
	// Reload hot-swaps the tenant onto a freshly read bundle and returns
	// the new live version.
	Reload(name string) (string, error)
	// Workspaces lists the hosted tenant names, sorted.
	Workspaces() []string
}

// sessionKey namespaces session IDs by tenant so the same ID used against
// two workspaces never collides.
type sessionKey struct {
	ws, id string
}

// Server exposes the agent over HTTP the way the deployed system is
// hosted (§7: "All the components of Conversational MDX are hosted on IBM
// Cloud"). It manages one persistent conversation context per (workspace,
// session ID) pair and mirrors the UI's thumbs-up/down feedback buttons.
//
// Bare routes serve the default workspace (or the tenant named by an
// X-Workspace header); /w/<tenant>/… routes address a tenant explicitly.
//
//	POST /chat      {"session":"s1","message":"precautions for aspirin"}
//	             -> {"session":"s1","reply":"…","intent":"…","answered":true,"closed":false}
//	POST /feedback  {"session":"s1","thumbs":"down"}
//	POST /admin/reload   hot-swap to a fresh bundle (when a reloader is set)
//	GET  /session/state?session=s1[&evict=1]   export dialogue state (handoff)
//	PUT  /session/state  {"session":"s1","state":"…"}   import dialogue state
//	GET  /context?session=s1
//	GET  /trace?session=s1[&all=1]
//	GET  /trace/slow     the K slowest turns with per-stage breakdowns
//	POST /w/<tenant>/chat   (and feedback, context, trace, trace/slow,
//	                         admin/reload, readyz under the same prefix)
//	GET  /metrics
//	GET  /healthz        liveness (the process answers HTTP)
//	GET  /readyz         readiness (artifacts installed, agent serving)
type Server struct {
	agent    *Agent            // single-agent mode; nil in workspace mode
	resolver WorkspaceResolver // workspace mode; nil in single-agent mode

	// defaultWS is the tenant bare routes resolve to; atomic because every
	// request reads it on the hot path.
	defaultWS atomic.Pointer[string]

	reg          *obs.Registry
	httpRequests *obs.CounterVec
	httpLatency  *obs.HistogramVec
	httpInflight *obs.Gauge

	// sessions is striped: a turn's session fetch locks only the shard its
	// (workspace, session) key hashes to, so concurrent chatters never
	// contend on one global map mutex. Each Session additionally carries
	// its own lock serializing turns within that conversation.
	sessions *sessionStore
	// sweepCursor round-robins the background sweeper over shards so each
	// tick pays for one shard, not the whole store.
	sweepCursor atomic.Uint64

	// mu guards the per-workspace bookkeeping and sweep configuration —
	// cold paths only (session create/evict, admin); never a per-turn
	// lookup.
	mu        sync.Mutex
	liveWS    map[string]int      // resident session count per workspace
	wsMetrics map[string]*Metrics // cached per-tenant bundles; survive eviction
	idleTTL   time.Duration
	now       func() time.Time

	// reloadMu serializes single-agent reloads; reloader produces the next
	// bundle (typically by re-reading a bundle file). Nil disables the
	// reload endpoint in single-agent mode.
	reloadMu sync.Mutex
	reloader func() (*bundle.Bundle, error)
}

// NewServer wraps one agent for HTTP serving (single-tenant mode: bare
// routes and /w/default/… both address it, metric families keep their
// historic unlabeled shapes).
func NewServer(a *Agent) *Server {
	s := newServer()
	s.agent = a
	s.reg = a.metrics.Registry()
	s.httpRequests = a.metrics.HTTPRequests
	s.httpLatency = a.metrics.HTTPLatency
	s.httpInflight = a.metrics.HTTPInflight
	s.wsMetrics[s.defaultWorkspace()] = a.metrics
	return s
}

// NewWorkspaceServer fronts a workspace resolver (multi-tenant mode).
// Tenant agents must be built with NewTenantMetricsOn against reg so every
// tenant's families coexist on this one registry; the server registers the
// process-level HTTP families on it directly.
func NewWorkspaceServer(r WorkspaceResolver, reg *obs.Registry) *Server {
	s := newServer()
	s.resolver = r
	s.reg = reg
	s.httpRequests, s.httpLatency, s.httpInflight = registerHTTPMetrics(reg)
	return s
}

func newServer() *Server {
	s := &Server{
		sessions:  newSessionStore(DefaultSessionShards),
		liveWS:    make(map[string]int),
		wsMetrics: make(map[string]*Metrics),
		idleTTL:   DefaultIdleTTL,
		now:       time.Now,
	}
	ws := DefaultWorkspace
	s.defaultWS.Store(&ws)
	return s
}

// SetIdleTTL changes the max-idle session lifetime; d <= 0 disables
// eviction.
func (s *Server) SetIdleTTL(d time.Duration) {
	s.mu.Lock()
	s.idleTTL = d
	s.mu.Unlock()
}

// SetDefaultWorkspace changes the tenant bare routes resolve to.
func (s *Server) SetDefaultWorkspace(name string) {
	s.mu.Lock()
	if s.agent != nil {
		// Single-agent mode: the one agent follows the default name.
		s.wsMetrics = map[string]*Metrics{name: s.agent.metrics}
	}
	s.mu.Unlock()
	s.defaultWS.Store(&name)
}

// SetClock injects the sweeper's time source (tests).
func (s *Server) SetClock(now func() time.Time) {
	s.mu.Lock()
	s.now = now
	s.mu.Unlock()
}

// StartSweeper runs the idle-session sweep from a background ticker so
// eviction no longer depends on /metrics scrapes, and returns a stop
// function (idempotent). Each tick sweeps a single shard (round-robin),
// amortizing the pass: no tick ever holds more than one shard lock, and a
// session idle past the TTL is gone within TTL + shards×every of its last
// turn. every <= 0 picks a quarter of the idle TTL spread across the
// shards, preserving the old full-store cadence.
func (s *Server) StartSweeper(every time.Duration) (stop func()) {
	if every <= 0 {
		s.mu.Lock()
		every = s.idleTTL / 4 / time.Duration(s.sessions.shardCount())
		s.mu.Unlock()
		if every < time.Second {
			every = time.Second
		}
	}
	done := make(chan struct{})
	var once sync.Once
	go func() {
		t := time.NewTicker(every)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				s.sweepNextShard()
			case <-done:
				return
			}
		}
	}()
	return func() { once.Do(func() { close(done) }) }
}

// sweepNextShard evicts idle sessions from the next shard in round-robin
// order (one background-sweeper tick).
func (s *Server) sweepNextShard() {
	s.mu.Lock()
	now, ttl := s.now(), s.idleTTL
	s.mu.Unlock()
	i := int(s.sweepCursor.Add(1) - 1)
	s.noteEvicted(s.sessions.sweepShard(i, now, ttl), "idle")
}

// defaultWorkspace returns the bare-route tenant.
func (s *Server) defaultWorkspace() string {
	return *s.defaultWS.Load()
}

// bareWorkspace picks the tenant for an un-prefixed route: the
// X-Workspace header when present, else the default workspace.
func (s *Server) bareWorkspace(r *http.Request) string {
	if ws := r.Header.Get("X-Workspace"); ws != "" {
		return ws
	}
	return s.defaultWorkspace()
}

// agentFor resolves the tenant's agent: the wrapped agent in single-agent
// mode, the resolver (which may cold-start or re-admit the tenant) in
// workspace mode. The tenant's metric bundle is cached on first contact so
// session bookkeeping keeps recording after the resolver evicts the agent.
func (s *Server) agentFor(ws string) (*Agent, error) {
	if s.resolver == nil {
		if ws != s.defaultWorkspace() {
			return nil, fmt.Errorf("%w: %q", ErrUnknownWorkspace, ws)
		}
		return s.agent, nil
	}
	ag, err := s.resolver.Resolve(ws)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	if _, ok := s.wsMetrics[ws]; !ok {
		s.wsMetrics[ws] = ag.Metrics()
	}
	s.mu.Unlock()
	return ag, nil
}

// metricsFor returns the tenant's cached metric bundle (nil before the
// tenant has served a request).
func (s *Server) metricsFor(ws string) *Metrics {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.wsMetrics[ws]
}

// workspaceError writes the HTTP mapping of a resolution failure.
func workspaceError(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	if errors.Is(err, ErrUnknownWorkspace) {
		status = http.StatusNotFound
	}
	http.Error(w, err.Error(), status)
}

// wsHandler is a tenant-scoped request handler.
type wsHandler func(w http.ResponseWriter, r *http.Request, ws string)

// Handler returns the HTTP handler tree.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	routes := map[string]wsHandler{
		"chat":          s.handleChat,
		"feedback":      s.handleFeedback,
		"context":       s.handleContext,
		"session/state": s.handleSessionState,
		"trace":         s.handleTrace,
		"trace/slow":    s.handleTraceSlow,
		"admin/reload":  s.handleReload,
		"readyz":        s.handleReady,
	}
	for sub, h := range routes {
		h := h
		mux.Handle("/"+sub, s.instrument("/"+sub, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			h(w, r, s.bareWorkspace(r))
		})))
	}
	// /w/<tenant>/<sub>: the path names the tenant and wins over the
	// header. The instrumented path label keeps a {ws} placeholder so
	// metric cardinality stays bounded by route, not tenant count.
	prefixed := make(map[string]http.Handler, len(routes))
	for sub, h := range routes {
		h := h
		prefixed[sub] = s.instrument("/w/{ws}/"+sub, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			ws, _, _ := strings.Cut(strings.TrimPrefix(r.URL.Path, "/w/"), "/")
			h(w, r, ws)
		}))
	}
	mux.Handle("/w/", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ws, sub, ok := strings.Cut(strings.TrimPrefix(r.URL.Path, "/w/"), "/")
		if !ok || ws == "" {
			http.NotFound(w, r)
			return
		}
		h, ok := prefixed[sub]
		if !ok {
			http.NotFound(w, r)
			return
		}
		h.ServeHTTP(w, r)
	}))
	mux.Handle("/metrics", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.Sweep() // scrapes still double as an idle-session janitor
		s.reg.Handler().ServeHTTP(w, r)
	}))
	mux.Handle("/healthz", s.instrument("/healthz", http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})))
	return mux
}

// ReadyResponse is the /readyz response body.
type ReadyResponse struct {
	Status    string `json:"status"`
	Version   string `json:"version"`
	Workspace string `json:"workspace,omitempty"`
}

// handleReady reports readiness: the tenant's agent has a live runtime
// generation (space, classifier, and KB installed) and can take traffic.
// Load drivers poll this instead of sleeping after process start; in
// workspace mode the poll doubles as a warm-up, forcing construction.
func (s *Server) handleReady(w http.ResponseWriter, _ *http.Request, ws string) {
	ag, err := s.agentFor(ws)
	if err != nil {
		workspaceError(w, err)
		return
	}
	version := ag.Version()
	if version == "" {
		http.Error(w, "agent has no installed runtime", http.StatusServiceUnavailable)
		return
	}
	resp := ReadyResponse{Status: "ready", Version: version}
	if ws != s.defaultWorkspace() {
		resp.Workspace = ws
	}
	writeJSON(w, resp)
}

// SlowTracesResponse is the /trace/slow response body: the slowest turns
// the live generation has served, worst first, each with its per-stage
// span breakdown and any request-ID/session annotations.
type SlowTracesResponse struct {
	K       int                 `json:"k"`
	Version string              `json:"version"`
	Traces  []obs.SlowTraceData `json:"traces"`
}

func (s *Server) handleTraceSlow(w http.ResponseWriter, _ *http.Request, ws string) {
	ag, err := s.agentFor(ws)
	if err != nil {
		workspaceError(w, err)
		return
	}
	writeJSON(w, SlowTracesResponse{
		K:       ag.metrics.Slow.K(),
		Version: ag.Version(),
		Traces:  ag.metrics.Slow.Snapshot(),
	})
}

// instrument wraps a handler with request count and latency metrics.
func (s *Server) instrument(path string, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		s.httpInflight.Add(1)
		defer s.httpInflight.Add(-1)
		sw := &statusWriter{ResponseWriter: w}
		next.ServeHTTP(sw, r)
		if sw.status == 0 {
			sw.status = http.StatusOK
		}
		s.httpRequests.With(path, fmt.Sprintf("%d", sw.status)).Inc()
		s.httpLatency.With(path).Observe(time.Since(start).Seconds())
	})
}

// statusWriter captures the response status code.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// SetReloader installs the bundle producer the single-agent reload path
// uses (the /admin/reload endpoint and any signal-driven Reload calls).
// Pass nil to disable reloading. Workspace mode ignores it: reloads go
// through the resolver.
func (s *Server) SetReloader(f func() (*bundle.Bundle, error)) {
	s.reloadMu.Lock()
	s.reloader = f
	s.reloadMu.Unlock()
}

// Reload obtains a fresh bundle from the reloader, validates it, and
// atomically swaps the agent onto it. In-flight turns finish on the old
// runtime; sessions survive. Returns the new live version.
func (s *Server) Reload() (string, error) {
	s.reloadMu.Lock()
	defer s.reloadMu.Unlock()
	if s.reloader == nil {
		return "", fmt.Errorf("agent: no reloader configured")
	}
	b, err := s.reloader()
	if err != nil {
		s.agent.metrics.Reloads.With("error").Inc()
		return "", fmt.Errorf("agent: reload: %w", err)
	}
	//ontolint:ignore lockheld reloadMu exists precisely to serialize installs; reloads are rare admin operations off the turn path, and turns never take this mutex.
	if err := s.agent.InstallBundle(b); err != nil {
		return "", err
	}
	return s.agent.Version(), nil
}

// ReloadResponse is the /admin/reload response body.
type ReloadResponse struct {
	Version   string `json:"version"`
	Workspace string `json:"workspace,omitempty"`
}

func (s *Server) handleReload(w http.ResponseWriter, r *http.Request, ws string) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	var version string
	var err error
	if s.resolver != nil {
		version, err = s.resolver.Reload(ws)
	} else if ws != s.defaultWorkspace() {
		err = fmt.Errorf("%w: %q", ErrUnknownWorkspace, ws)
	} else {
		version, err = s.Reload()
	}
	if err != nil {
		if errors.Is(err, ErrUnknownWorkspace) {
			workspaceError(w, err)
			return
		}
		status := http.StatusInternalServerError
		if strings.Contains(err.Error(), "no reloader configured") {
			status = http.StatusNotImplemented
		}
		http.Error(w, err.Error(), status)
		return
	}
	resp := ReloadResponse{Version: version}
	if ws != s.defaultWorkspace() {
		resp.Workspace = ws
	}
	writeJSON(w, resp)
}

// ChatRequest is the /chat request body.
type ChatRequest struct {
	Session string `json:"session"`
	Message string `json:"message"`
}

// ChatResponse is the /chat response body. Answered marks turns that
// executed a KB query — external drivers (cmd/loadgen) use it to know a
// request completed without parsing the reply text. Workspace is set only
// when the turn was served by a non-default tenant, keeping the
// default-workspace wire shape byte-identical to the single-tenant era.
type ChatResponse struct {
	Session   string `json:"session"`
	Reply     string `json:"reply"`
	Intent    string `json:"intent,omitempty"`
	Answered  bool   `json:"answered"`
	Closed    bool   `json:"closed"`
	Workspace string `json:"workspace,omitempty"`
}

// FeedbackRequest is the /feedback request body.
type FeedbackRequest struct {
	Session string `json:"session"`
	Thumbs  string `json:"thumbs"` // "up" or "down"
}

// session returns (creating if needed) the tenant's named session. Only
// the key's shard is locked; the server mutex is taken solely on create,
// for workspace bookkeeping.
func (s *Server) session(ws, id string) *Session {
	sess, created := s.sessions.getOrCreate(sessionKey{ws: ws, id: id})
	if created {
		s.noteOpened(ws)
	}
	return sess
}

// noteOpened records a session birth against its workspace.
func (s *Server) noteOpened(ws string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.liveWS[ws]++
	if m := s.wsMetrics[ws]; m != nil {
		m.SessionsOpened.Inc()
		m.SessionsLive.Set(int64(s.liveWS[ws]))
	}
}

// lookup returns the tenant's named session without creating it.
func (s *Server) lookup(ws, id string) (*Session, bool) {
	return s.sessions.get(sessionKey{ws: ws, id: id})
}

// drop removes a session and records the eviction reason.
func (s *Server) drop(ws, id, reason string) {
	if s.sessions.remove(sessionKey{ws: ws, id: id}) {
		s.noteEvicted([]sessionKey{{ws: ws, id: id}}, reason)
	}
}

// noteEvicted records session deaths against their workspaces.
func (s *Server) noteEvicted(keys []sessionKey, reason string) {
	if len(keys) == 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	byWS := make(map[string]int)
	for _, key := range keys {
		byWS[key.ws]++
	}
	for ws, n := range byWS {
		s.liveWS[ws] -= n
		if m := s.wsMetrics[ws]; m != nil {
			m.SessionsEvicted.With(reason).Add(uint64(n))
			m.SessionsLive.Set(int64(s.liveWS[ws]))
		}
		if s.liveWS[ws] <= 0 {
			delete(s.liveWS, ws)
		}
	}
}

// Sweep evicts every idle session now, walking all shards one lock at a
// time (the /metrics janitor path and tests; the background sweeper
// amortizes the same work via sweepNextShard).
func (s *Server) Sweep() {
	s.mu.Lock()
	now, ttl := s.now(), s.idleTTL
	s.mu.Unlock()
	s.noteEvicted(s.sessions.sweepAll(now, ttl), "idle")
}

func (s *Server) handleChat(w http.ResponseWriter, r *http.Request, ws string) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	var req ChatRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	if req.Session == "" || strings.TrimSpace(req.Message) == "" {
		http.Error(w, "session and message are required", http.StatusBadRequest)
		return
	}
	ag, err := s.agentFor(ws)
	if err != nil {
		workspaceError(w, err)
		return
	}
	obs.LogField(r, "session", req.Session)
	sess := s.session(ws, req.Session)

	// Serialize turns within this session only; other sessions hold their
	// own locks and proceed concurrently. The agent reference is held for
	// the whole turn, so a concurrent workspace eviction cannot pull the
	// runtime out from under it.
	sess.mu.Lock()
	//ontolint:ignore lockheld per-session lock: serializing turns within one conversation is the point
	reply := ag.Respond(sess, req.Message)
	last := sess.LastTurn()
	closed := sess.Closed()
	resp := ChatResponse{Session: req.Session, Reply: reply, Closed: closed}
	if ws != s.defaultWorkspace() {
		resp.Workspace = ws
	}
	if last != nil {
		resp.Intent = last.Intent
		resp.Answered = last.Answered
		// Join key between this turn's trace (visible in /trace and, for
		// the slowest turns, /trace/slow) and the access-log line.
		if id := obs.RequestID(r); id != "" {
			last.Trace.Annotate("request_id", id)
		}
		last.Trace.Annotate("session", req.Session)
	}
	sess.mu.Unlock()

	if closed {
		s.drop(ws, req.Session, "closed")
	}
	writeJSON(w, resp)
}

func (s *Server) handleFeedback(w http.ResponseWriter, r *http.Request, ws string) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	var req FeedbackRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	if req.Thumbs != "up" && req.Thumbs != "down" {
		http.Error(w, `thumbs must be "up" or "down"`, http.StatusBadRequest)
		return
	}
	obs.LogField(r, "session", req.Session)
	sess, ok := s.lookup(ws, req.Session)
	if !ok {
		http.Error(w, "unknown session", http.StatusNotFound)
		return
	}
	sess.mu.Lock()
	sess.Feedback(req.Thumbs == "up")
	intent := ""
	if last := sess.LastTurn(); last != nil {
		intent = last.Intent
	}
	sess.mu.Unlock()
	if m := s.metricsFor(ws); m != nil {
		m.Feedback.With(intent, req.Thumbs).Inc()
	}
	writeJSON(w, map[string]string{"status": "recorded"})
}

func (s *Server) handleContext(w http.ResponseWriter, r *http.Request, ws string) {
	id := r.URL.Query().Get("session")
	obs.LogField(r, "session", id)
	sess, ok := s.lookup(ws, id)
	if !ok {
		http.Error(w, "unknown session", http.StatusNotFound)
		return
	}
	sess.mu.Lock()
	payload := map[string]interface{}{
		"session":  id,
		"intent":   sess.Ctx.Intent,
		"bindings": sess.Ctx.Bindings(),
		"turns":    len(sess.Turns),
	}
	sess.mu.Unlock()
	writeJSON(w, payload)
}

// SessionStateResponse is the GET /session/state response body: the
// session's full dialogue context as an opaque versioned record (the
// internal/dialogue snapshot format, base64 on the wire), plus the turn
// count for operator visibility.
type SessionStateResponse struct {
	Session   string `json:"session"`
	Turns     int    `json:"turns"`
	State     []byte `json:"state"`
	Workspace string `json:"workspace,omitempty"`
}

// SessionStateRequest is the PUT /session/state request body.
type SessionStateRequest struct {
	Session string `json:"session"`
	State   []byte `json:"state"`
}

// handleSessionState exports (GET) or imports (PUT/POST) a session's
// dialogue state — the handoff primitive cmd/mdxrouter uses when a ring
// change moves a session to another replica. GET with ?evict=1 atomically
// exports and drops the local copy so exactly one replica owns a session
// at a time; the importer restores the conversation context and serves
// the next turn as if the whole dialogue had happened locally. Turn
// transcripts and traces stay on the exporting replica: later turns need
// state, not history.
func (s *Server) handleSessionState(w http.ResponseWriter, r *http.Request, ws string) {
	switch r.Method {
	case http.MethodGet:
		id := r.URL.Query().Get("session")
		obs.LogField(r, "session", id)
		sess, ok := s.lookup(ws, id)
		if !ok {
			http.Error(w, "unknown session", http.StatusNotFound)
			return
		}
		sess.mu.Lock()
		state := sess.Ctx.Snapshot()
		turns := len(sess.Turns)
		sess.mu.Unlock()
		if r.URL.Query().Get("evict") != "" {
			s.drop(ws, id, "exported")
		}
		resp := SessionStateResponse{Session: id, Turns: turns, State: state}
		if ws != s.defaultWorkspace() {
			resp.Workspace = ws
		}
		writeJSON(w, resp)
	case http.MethodPut, http.MethodPost:
		var req SessionStateRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
			return
		}
		if req.Session == "" {
			http.Error(w, "session is required", http.StatusBadRequest)
			return
		}
		obs.LogField(r, "session", req.Session)
		// Resolving the agent validates the tenant (404 for unknown
		// workspaces) and, in workspace mode, warms it so the imported
		// session's next turn doesn't pay the cold start.
		if _, err := s.agentFor(ws); err != nil {
			workspaceError(w, err)
			return
		}
		ctx, err := dialogue.Restore(req.State)
		if err != nil {
			http.Error(w, "bad state: "+err.Error(), http.StatusBadRequest)
			return
		}
		sess := NewSession()
		sess.Ctx = ctx
		if !s.sessions.put(sessionKey{ws: ws, id: req.Session}, sess) {
			s.noteOpened(ws)
		}
		writeJSON(w, map[string]string{"session": req.Session, "status": "imported"})
	default:
		http.Error(w, "GET, PUT, or POST required", http.StatusMethodNotAllowed)
	}
}

// TraceResponse is the /trace response body: the per-stage execution
// trace(s) of a session's turns.
type TraceResponse struct {
	Session string          `json:"session"`
	Turns   int             `json:"turns"`
	Traces  []obs.TraceData `json:"traces"`
}

// handleTrace returns the last turn's trace (or every turn's with
// ?all=1) for a session.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request, ws string) {
	id := r.URL.Query().Get("session")
	obs.LogField(r, "session", id)
	sess, ok := s.lookup(ws, id)
	if !ok {
		http.Error(w, "unknown session", http.StatusNotFound)
		return
	}
	all := r.URL.Query().Get("all") != ""
	sess.mu.Lock()
	resp := TraceResponse{Session: id, Turns: len(sess.Turns)}
	if all {
		for i := range sess.Turns {
			resp.Traces = append(resp.Traces, sess.Turns[i].Trace.Snapshot())
		}
	} else if last := sess.LastTurn(); last != nil {
		resp.Traces = append(resp.Traces, last.Trace.Snapshot())
	}
	sess.mu.Unlock()
	writeJSON(w, resp)
}

func writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
