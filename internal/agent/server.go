package agent

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"time"

	"ontoconv/internal/bundle"
	"ontoconv/internal/obs"
)

// DefaultIdleTTL is how long an abandoned session is kept before the
// sweeper evicts it.
const DefaultIdleTTL = 30 * time.Minute

// Server exposes the agent over HTTP the way the deployed system is
// hosted (§7: "All the components of Conversational MDX are hosted on IBM
// Cloud"). It manages one persistent conversation context per session ID
// and mirrors the UI's thumbs-up/down feedback buttons.
//
//	POST /chat      {"session":"s1","message":"precautions for aspirin"}
//	             -> {"session":"s1","reply":"…","intent":"…","answered":true,"closed":false}
//	POST /feedback  {"session":"s1","thumbs":"down"}
//	POST /admin/reload   hot-swap to a fresh bundle (when a reloader is set)
//	GET  /context?session=s1
//	GET  /trace?session=s1[&all=1]
//	GET  /trace/slow     the K slowest turns with per-stage breakdowns
//	GET  /metrics
//	GET  /healthz        liveness (the process answers HTTP)
//	GET  /readyz         readiness (artifacts installed, agent serving)
type Server struct {
	agent *Agent

	// mu guards the session map only; each Session carries its own lock,
	// so turns in distinct sessions proceed concurrently.
	mu        sync.Mutex
	sessions  map[string]*Session
	idleTTL   time.Duration
	lastSweep time.Time

	// reloadMu serializes reloads; reloader produces the next bundle
	// (typically by re-reading a bundle file). Nil disables the reload
	// endpoint.
	reloadMu sync.Mutex
	reloader func() (*bundle.Bundle, error)
}

// NewServer wraps an agent for HTTP serving.
func NewServer(a *Agent) *Server {
	return &Server{
		agent:    a,
		sessions: make(map[string]*Session),
		idleTTL:  DefaultIdleTTL,
	}
}

// SetIdleTTL changes the max-idle session lifetime; d <= 0 disables
// eviction.
func (s *Server) SetIdleTTL(d time.Duration) {
	s.mu.Lock()
	s.idleTTL = d
	s.mu.Unlock()
}

// Handler returns the HTTP handler tree.
func (s *Server) Handler() http.Handler {
	m := s.agent.metrics
	mux := http.NewServeMux()
	handle := func(path string, h http.HandlerFunc) {
		mux.Handle(path, s.instrument(path, h))
	}
	handle("/chat", s.handleChat)
	handle("/feedback", s.handleFeedback)
	handle("/context", s.handleContext)
	handle("/trace", s.handleTrace)
	handle("/trace/slow", s.handleTraceSlow)
	handle("/admin/reload", s.handleReload)
	mux.Handle("/metrics", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.sweep() // scrapes double as the idle-session janitor
		m.Registry().Handler().ServeHTTP(w, r)
	}))
	handle("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	handle("/readyz", s.handleReady)
	return mux
}

// ReadyResponse is the /readyz response body.
type ReadyResponse struct {
	Status  string `json:"status"`
	Version string `json:"version"`
}

// handleReady reports readiness: the agent has a live runtime generation
// (space, classifier, and KB installed) and can take traffic. Load
// drivers poll this instead of sleeping after process start.
func (s *Server) handleReady(w http.ResponseWriter, _ *http.Request) {
	version := s.agent.Version()
	if version == "" {
		http.Error(w, "agent has no installed runtime", http.StatusServiceUnavailable)
		return
	}
	writeJSON(w, ReadyResponse{Status: "ready", Version: version})
}

// SlowTracesResponse is the /trace/slow response body: the slowest turns
// the live generation has served, worst first, each with its per-stage
// span breakdown and any request-ID/session annotations.
type SlowTracesResponse struct {
	K       int                 `json:"k"`
	Version string              `json:"version"`
	Traces  []obs.SlowTraceData `json:"traces"`
}

func (s *Server) handleTraceSlow(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, SlowTracesResponse{
		K:       s.agent.metrics.Slow.K(),
		Version: s.agent.Version(),
		Traces:  s.agent.metrics.Slow.Snapshot(),
	})
}

// instrument wraps a handler with request count and latency metrics.
func (s *Server) instrument(path string, next http.Handler) http.Handler {
	m := s.agent.metrics
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		m.HTTPInflight.Add(1)
		defer m.HTTPInflight.Add(-1)
		sw := &statusWriter{ResponseWriter: w}
		next.ServeHTTP(sw, r)
		if sw.status == 0 {
			sw.status = http.StatusOK
		}
		m.HTTPRequests.With(path, fmt.Sprintf("%d", sw.status)).Inc()
		m.HTTPLatency.With(path).Observe(time.Since(start).Seconds())
	})
}

// statusWriter captures the response status code.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// SetReloader installs the bundle producer the reload path uses (the
// /admin/reload endpoint and any signal-driven Reload calls). Pass nil to
// disable reloading.
func (s *Server) SetReloader(f func() (*bundle.Bundle, error)) {
	s.reloadMu.Lock()
	s.reloader = f
	s.reloadMu.Unlock()
}

// Reload obtains a fresh bundle from the reloader, validates it, and
// atomically swaps the agent onto it. In-flight turns finish on the old
// runtime; sessions survive. Returns the new live version.
func (s *Server) Reload() (string, error) {
	s.reloadMu.Lock()
	defer s.reloadMu.Unlock()
	if s.reloader == nil {
		return "", fmt.Errorf("agent: no reloader configured")
	}
	b, err := s.reloader()
	if err != nil {
		s.agent.metrics.Reloads.With("error").Inc()
		return "", fmt.Errorf("agent: reload: %w", err)
	}
	//ontolint:ignore lockheld reloadMu exists precisely to serialize installs; reloads are rare admin operations off the turn path, and turns never take this mutex.
	if err := s.agent.InstallBundle(b); err != nil {
		return "", err
	}
	return s.agent.Version(), nil
}

// ReloadResponse is the /admin/reload response body.
type ReloadResponse struct {
	Version string `json:"version"`
}

func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	version, err := s.Reload()
	if err != nil {
		status := http.StatusInternalServerError
		if strings.Contains(err.Error(), "no reloader configured") {
			status = http.StatusNotImplemented
		}
		http.Error(w, err.Error(), status)
		return
	}
	writeJSON(w, ReloadResponse{Version: version})
}

// ChatRequest is the /chat request body.
type ChatRequest struct {
	Session string `json:"session"`
	Message string `json:"message"`
}

// ChatResponse is the /chat response body. Answered marks turns that
// executed a KB query — external drivers (cmd/loadgen) use it to know a
// request completed without parsing the reply text.
type ChatResponse struct {
	Session  string `json:"session"`
	Reply    string `json:"reply"`
	Intent   string `json:"intent,omitempty"`
	Answered bool   `json:"answered"`
	Closed   bool   `json:"closed"`
}

// FeedbackRequest is the /feedback request body.
type FeedbackRequest struct {
	Session string `json:"session"`
	Thumbs  string `json:"thumbs"` // "up" or "down"
}

// session returns (creating if needed) the named session, and
// opportunistically sweeps idle ones.
func (s *Server) session(id string) *Session {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sweepLocked(time.Now())
	sess, ok := s.sessions[id]
	if !ok {
		sess = NewSession()
		s.sessions[id] = sess
		s.agent.metrics.SessionsOpened.Inc()
		s.agent.metrics.SessionsLive.Set(int64(len(s.sessions)))
	}
	return sess
}

// lookup returns the named session without creating it.
func (s *Server) lookup(id string) (*Session, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sess, ok := s.sessions[id]
	return sess, ok
}

// drop removes a session and records the eviction reason.
func (s *Server) drop(id, reason string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.sessions[id]; !ok {
		return
	}
	delete(s.sessions, id)
	s.agent.metrics.SessionsEvicted.With(reason).Inc()
	s.agent.metrics.SessionsLive.Set(int64(len(s.sessions)))
}

// sweep evicts idle sessions (also called from the /metrics handler so
// periodic scrapes act as a janitor).
func (s *Server) sweep() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.lastSweep = time.Time{} // force
	s.sweepLocked(time.Now())
}

// sweepLocked evicts sessions idle past the TTL. Throttled to at most one
// pass per quarter-TTL so per-request overhead stays negligible.
func (s *Server) sweepLocked(now time.Time) {
	if s.idleTTL <= 0 {
		return
	}
	if now.Sub(s.lastSweep) < s.idleTTL/4 {
		return
	}
	s.lastSweep = now
	evicted := 0
	for id, sess := range s.sessions {
		if now.Sub(sess.LastActive()) > s.idleTTL {
			delete(s.sessions, id)
			evicted++
		}
	}
	if evicted > 0 {
		s.agent.metrics.SessionsEvicted.With("idle").Add(uint64(evicted))
		s.agent.metrics.SessionsLive.Set(int64(len(s.sessions)))
	}
}

func (s *Server) handleChat(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	var req ChatRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	if req.Session == "" || strings.TrimSpace(req.Message) == "" {
		http.Error(w, "session and message are required", http.StatusBadRequest)
		return
	}
	obs.LogField(r, "session", req.Session)
	sess := s.session(req.Session)

	// Serialize turns within this session only; other sessions hold their
	// own locks and proceed concurrently.
	sess.mu.Lock()
	//ontolint:ignore lockheld per-session lock: serializing turns within one conversation is the point
	reply := s.agent.Respond(sess, req.Message)
	last := sess.LastTurn()
	closed := sess.Closed()
	resp := ChatResponse{Session: req.Session, Reply: reply, Closed: closed}
	if last != nil {
		resp.Intent = last.Intent
		resp.Answered = last.Answered
		// Join key between this turn's trace (visible in /trace and, for
		// the slowest turns, /trace/slow) and the access-log line.
		if id := obs.RequestID(r); id != "" {
			last.Trace.Annotate("request_id", id)
		}
		last.Trace.Annotate("session", req.Session)
	}
	sess.mu.Unlock()

	if closed {
		s.drop(req.Session, "closed")
	}
	writeJSON(w, resp)
}

func (s *Server) handleFeedback(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	var req FeedbackRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	if req.Thumbs != "up" && req.Thumbs != "down" {
		http.Error(w, `thumbs must be "up" or "down"`, http.StatusBadRequest)
		return
	}
	obs.LogField(r, "session", req.Session)
	sess, ok := s.lookup(req.Session)
	if !ok {
		http.Error(w, "unknown session", http.StatusNotFound)
		return
	}
	sess.mu.Lock()
	sess.Feedback(req.Thumbs == "up")
	intent := ""
	if last := sess.LastTurn(); last != nil {
		intent = last.Intent
	}
	sess.mu.Unlock()
	s.agent.metrics.Feedback.With(intent, req.Thumbs).Inc()
	writeJSON(w, map[string]string{"status": "recorded"})
}

func (s *Server) handleContext(w http.ResponseWriter, r *http.Request) {
	id := r.URL.Query().Get("session")
	obs.LogField(r, "session", id)
	sess, ok := s.lookup(id)
	if !ok {
		http.Error(w, "unknown session", http.StatusNotFound)
		return
	}
	sess.mu.Lock()
	payload := map[string]interface{}{
		"session":  id,
		"intent":   sess.Ctx.Intent,
		"bindings": sess.Ctx.Bindings(),
		"turns":    len(sess.Turns),
	}
	sess.mu.Unlock()
	writeJSON(w, payload)
}

// TraceResponse is the /trace response body: the per-stage execution
// trace(s) of a session's turns.
type TraceResponse struct {
	Session string          `json:"session"`
	Turns   int             `json:"turns"`
	Traces  []obs.TraceData `json:"traces"`
}

// handleTrace returns the last turn's trace (or every turn's with
// ?all=1) for a session.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	id := r.URL.Query().Get("session")
	obs.LogField(r, "session", id)
	sess, ok := s.lookup(id)
	if !ok {
		http.Error(w, "unknown session", http.StatusNotFound)
		return
	}
	all := r.URL.Query().Get("all") != ""
	sess.mu.Lock()
	resp := TraceResponse{Session: id, Turns: len(sess.Turns)}
	if all {
		for i := range sess.Turns {
			resp.Traces = append(resp.Traces, sess.Turns[i].Trace.Snapshot())
		}
	} else if last := sess.LastTurn(); last != nil {
		resp.Traces = append(resp.Traces, last.Trace.Snapshot())
	}
	sess.mu.Unlock()
	writeJSON(w, resp)
}

func writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
