package agent

import (
	"testing"
	"time"
)

func TestSessionStoreRoundsShardsToPowerOfTwo(t *testing.T) {
	for _, tc := range []struct{ in, want int }{
		{0, 1}, {1, 1}, {2, 2}, {3, 4}, {64, 64}, {65, 128},
	} {
		if got := newSessionStore(tc.in).shardCount(); got != tc.want {
			t.Errorf("newSessionStore(%d).shardCount() = %d, want %d", tc.in, got, tc.want)
		}
	}
}

func TestSessionStoreBasics(t *testing.T) {
	st := newSessionStore(8)
	key := sessionKey{ws: "default", id: "s1"}

	if _, ok := st.get(key); ok {
		t.Fatal("get on empty store returned a session")
	}
	sess, created := st.getOrCreate(key)
	if !created || sess == nil {
		t.Fatalf("getOrCreate = (%v, %v), want fresh session", sess, created)
	}
	again, created := st.getOrCreate(key)
	if created || again != sess {
		t.Fatal("second getOrCreate did not return the existing session")
	}
	if got, ok := st.get(key); !ok || got != sess {
		t.Fatal("get did not find the created session")
	}
	if st.len() != 1 {
		t.Fatalf("len = %d, want 1", st.len())
	}

	other := NewSession()
	if replaced := st.put(key, other); !replaced {
		t.Fatal("put over an existing key reported no replacement")
	}
	if got, _ := st.get(key); got != other {
		t.Fatal("put did not install the new session")
	}
	if !st.remove(key) {
		t.Fatal("remove reported the key absent")
	}
	if st.remove(key) {
		t.Fatal("second remove reported the key present")
	}
	if st.len() != 0 {
		t.Fatalf("len after remove = %d, want 0", st.len())
	}
}

func TestSessionStoreKeySeparation(t *testing.T) {
	// ("ab","c") and ("a","bc") are distinct keys and distinct hashes.
	if fnv1a("ab", "c") == fnv1a("a", "bc") {
		t.Fatal("fnv1a collides across the workspace/id boundary")
	}
	st := newSessionStore(4)
	a, _ := st.getOrCreate(sessionKey{ws: "ab", id: "c"})
	b, _ := st.getOrCreate(sessionKey{ws: "a", id: "bc"})
	if a == b {
		t.Fatal("distinct (workspace, id) pairs shared a session")
	}
}

func TestSweepShardIsShardLocal(t *testing.T) {
	st := newSessionStore(4)
	now := time.Now()
	// Pin an expired session into every shard by brute-forcing IDs.
	perShard := make(map[int]sessionKey)
	for i := 0; len(perShard) < st.shardCount(); i++ {
		key := sessionKey{ws: "default", id: "s" + itoa(i)}
		shard := int(fnv1a(key.ws, key.id) & st.mask)
		if _, ok := perShard[shard]; ok {
			continue
		}
		sess, _ := st.getOrCreate(key)
		sess.lastActive.Store(now.Add(-time.Hour).UnixNano())
		perShard[shard] = key
	}

	evicted := st.sweepShard(2, now, time.Minute)
	if len(evicted) != 1 || evicted[0] != perShard[2] {
		t.Fatalf("sweepShard(2) evicted %v, want exactly %v", evicted, perShard[2])
	}
	if st.len() != st.shardCount()-1 {
		t.Fatalf("len after one-shard sweep = %d, want %d", st.len(), st.shardCount()-1)
	}
	// Index wraps by mask, so a cursor larger than the shard count is fine.
	if got := st.sweepShard(2+st.shardCount(), now, time.Minute); len(got) != 0 {
		t.Fatalf("wrapped sweep of the same shard evicted %v again", got)
	}

	if rest := st.sweepAll(now, time.Minute); len(rest) != st.shardCount()-1 {
		t.Fatalf("sweepAll evicted %d, want %d", len(rest), st.shardCount()-1)
	}
	if st.sweepAll(now, 0) != nil {
		t.Fatal("ttl <= 0 must disable eviction")
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}
