package agent_test

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"ontoconv/internal/agent"
)

// exportState pulls a session's dialogue snapshot off a replica via
// GET /session/state, optionally evicting the local copy.
func exportState(t *testing.T, ts *httptest.Server, session string, evict bool) agent.SessionStateResponse {
	t.Helper()
	url := ts.URL + "/session/state?session=" + session
	if evict {
		url += "&evict=1"
	}
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("export status %d", resp.StatusCode)
	}
	var out agent.SessionStateResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}

// importState pushes an exported snapshot into a replica via
// PUT /session/state.
func importState(t *testing.T, ts *httptest.Server, session string, state []byte) {
	t.Helper()
	body, err := json.Marshal(agent.SessionStateRequest{Session: session, State: state})
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPut, ts.URL+"/session/state", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("import status %d", resp.StatusCode)
	}
}

// TestSessionMigratesAcrossReplicas is the cross-replica handoff
// end-to-end: a multi-turn elicitation starts on replica A, is exported
// mid-flow (with eviction, so A forgets it), imported into replica B,
// and finishes there. Every remaining reply must be byte-identical to
// the same conversation played against a single process — the restored
// context carries the pending elicitation, the entity bindings, and the
// follow-up ellipsis state.
func TestSessionMigratesAcrossReplicas(t *testing.T) {
	script := []string{
		"show me drugs that treat psoriasis", // elicits the age group
		"pediatric",                          // completes the request
		"what about contraindications?",      // follow-up reuses the bindings
	}
	const migrateAfter = 1 // export mid-elicitation, before "pediatric"

	// Control transcript: the whole conversation on one replica.
	control := serverFixture(t)
	var want []string
	for _, msg := range script {
		want = append(want, chat(t, control, "m1", msg).Reply)
	}

	replicaA := serverFixture(t)
	replicaB := serverFixture(t)

	var got []string
	for i, msg := range script {
		if i == migrateAfter {
			exported := exportState(t, replicaA, "m1", true)
			if exported.Turns != migrateAfter {
				t.Fatalf("exported %d turns, want %d", exported.Turns, migrateAfter)
			}
			// Eviction means A no longer knows the session: a stray turn
			// routed there would start a fresh conversation, not resume.
			resp, err := http.Get(replicaA.URL + "/context?session=m1")
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusNotFound {
				t.Fatalf("replica A still serves the evicted session (status %d)", resp.StatusCode)
			}
			importState(t, replicaB, "m1", exported.State)
		}
		replica := replicaA
		if i >= migrateAfter {
			replica = replicaB
		}
		got = append(got, chat(t, replica, "m1", msg).Reply)
	}

	for i := range script {
		if got[i] != want[i] {
			t.Fatalf("turn %d diverged after migration:\n  migrated: %q\n  control:  %q", i+1, got[i], want[i])
		}
	}

	// The migrated session keeps flowing on B: one more turn that leans
	// on the conversation context must still answer.
	r := chat(t, replicaB, "m1", "precautions for Aspirin")
	if r.Reply == "" || r.Reply == want[0] {
		t.Fatalf("post-migration turn = %q", r.Reply)
	}
}

// TestSessionImportRejectsGarbage pins the failure mode: an import with
// a corrupt snapshot must 400 without creating a session.
func TestSessionImportRejectsGarbage(t *testing.T) {
	ts := serverFixture(t)
	body, _ := json.Marshal(agent.SessionStateRequest{Session: "junk", State: []byte("not a snapshot")})
	req, _ := http.NewRequest(http.MethodPut, ts.URL+"/session/state", bytes.NewReader(body))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage import status %d, want 400", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/context?session=junk")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("rejected import still created a session (status %d)", resp.StatusCode)
	}
}
