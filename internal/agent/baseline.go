package agent

import (
	"sort"
	"strings"

	"ontoconv/internal/core"
	"ontoconv/internal/kb"
	"ontoconv/internal/nlu"
	"ontoconv/internal/sqlx"
)

// KeywordAgent is the search-engine-style baseline (§6.3 observes users
// treating the agent like one; §8 contrasts keyword-based NLIs): it has no
// intent classifier, no dialogue tree, no slot filling and no persistent
// context. An utterance is answered only when it simultaneously names a
// key-concept instance and a dependent concept; everything else returns a
// refinement prompt. It is the comparison point for ablation A4.
type KeywordAgent struct {
	space *core.Space
	base  *kb.KB
	rec   *nlu.Recognizer
	// lookupByConcept maps a dependent concept name -> the lookup intent
	// answering it.
	lookupByConcept map[string]*core.Intent
}

// NewKeywordAgent builds the baseline over the same bootstrapped space.
func NewKeywordAgent(space *core.Space, base *kb.KB) *KeywordAgent {
	rec := nlu.NewRecognizer()
	for _, def := range space.Entities {
		for _, v := range def.Values {
			rec.Add(def.Name, v.Value, v.Synonyms...)
		}
	}
	k := &KeywordAgent{space: space, base: base, rec: rec, lookupByConcept: map[string]*core.Intent{}}
	for i := range space.Intents {
		in := &space.Intents[i]
		if in.Kind == core.LookupPattern && len(in.Required) == 1 {
			k.lookupByConcept[in.AnswerConcept] = in
		}
	}
	return k
}

// Respond answers a single utterance statelessly. The second return value
// names the intent used ("" when unanswered).
func (k *KeywordAgent) Respond(utterance string) (string, string) {
	mentions := k.rec.Recognize(utterance)
	var conceptMention, instanceMention *nlu.Mention
	for i := range mentions {
		m := &mentions[i]
		if m.Partial {
			continue
		}
		switch m.Type {
		case "Concepts":
			if conceptMention == nil {
				conceptMention = m
			}
		default:
			if instanceMention == nil {
				instanceMention = m
			}
		}
	}
	if conceptMention == nil || instanceMention == nil {
		return "Please refine your search.", ""
	}
	in := k.lookupByConcept[conceptMention.Value]
	if in == nil || in.Template == nil {
		return "Please refine your search.", ""
	}
	req := in.Required[0]
	if req.Entity != instanceMention.Type {
		return "Please refine your search.", ""
	}
	stmt, err := in.Template.Instantiate(map[string]string{req.Param: instanceMention.Value})
	if err != nil {
		return "Please refine your search.", ""
	}
	res, err := sqlx.Execute(k.base, stmt)
	if err != nil || len(res.Rows) == 0 {
		return "No results found.", in.Name
	}
	var vals []string
	for i, r := range res.Strings() {
		if i == 10 {
			vals = append(vals, "…")
			break
		}
		vals = append(vals, strings.Join(nonEmpty(r), " — "))
	}
	sort.Strings(vals)
	return strings.Join(vals, "; "), in.Name
}
