package agent

import (
	"time"

	"ontoconv/internal/nlu"
	"ontoconv/internal/obs"
	"ontoconv/internal/par"
)

// Metrics is the agent's metric bundle, mirroring the per-intent usage and
// success-rate bookkeeping of the production deployment (§7, Figures
// 11-12): turn and per-stage latency, per-intent classification /
// fulfillment / feedback counters, and session lifecycle.
type Metrics struct {
	reg *obs.Registry

	// Turn pipeline.
	Turns         *obs.Counter
	TurnLatency   *obs.Histogram
	StageLatency  *obs.HistogramVec // stage
	Fallbacks     *obs.Counter
	LowConfidence *obs.Counter

	// Live tail latency: high-resolution quantiles over the last
	// TurnLiveWindow (exposed as mdx_turn_seconds_live{quantile="…"}),
	// and the slowest-K turn traces with per-stage breakdowns
	// (GET /trace/slow).
	TurnLive *obs.RollingQuantile
	Slow     *obs.SlowTraces

	// Per-intent bookkeeping (Figure 11).
	Classified *obs.CounterVec // intent
	Fulfilled  *obs.CounterVec // intent
	Feedback   *obs.CounterVec // intent, thumbs

	// Answer cache (the per-turn fast path).
	AnswerCache *obs.CounterVec // result (hit, miss)

	// Session lifecycle.
	SessionsLive    *obs.Gauge
	SessionsOpened  *obs.Counter
	SessionsEvicted *obs.CounterVec // reason

	// HTTP serving.
	HTTPRequests *obs.CounterVec // path, code
	HTTPLatency  *obs.HistogramVec
	HTTPInflight *obs.Gauge

	// Artifact lifecycle: which bundle version is live (info-style gauge,
	// 1 for the serving generation, 0 for retired ones) and hot-reload
	// outcomes.
	BundleInfo    *obs.GaugeVec   // version
	Reloads       *obs.CounterVec // result (success, error)
	ReloadLatency *obs.Histogram
}

// TurnLiveWindow is the span of the live turn-latency quantile window,
// split into TurnLiveSlots ring slots.
const (
	TurnLiveWindow = 60 * time.Second
	TurnLiveSlots  = 6
)

// TurnLiveQuantiles are the quantiles exposed as live gauges.
var TurnLiveQuantiles = []float64{0.5, 0.9, 0.99}

// NewMetrics builds the bundle on a fresh registry.
func NewMetrics() *Metrics { return NewMetricsOn(obs.NewRegistry()) }

// NewMetricsOn builds the bundle on an existing registry, so callers can
// expose agent metrics next to their own.
func NewMetricsOn(reg *obs.Registry) *Metrics {
	m := &Metrics{
		reg:   reg,
		Turns: reg.Counter("mdx_turns_total", "Conversation turns processed."),
		TurnLatency: reg.Histogram("mdx_turn_seconds",
			"End-to-end turn latency in seconds.", nil),
		StageLatency: reg.HistogramVec("mdx_turn_stage_seconds",
			"Per-stage turn latency in seconds.", nil, "stage"),
		Fallbacks: reg.Counter("mdx_fallback_total",
			"Turns answered by the fallback response (no intent routed)."),
		LowConfidence: reg.Counter("mdx_intent_low_confidence_total",
			"Classifications below the confidence threshold."),
		Classified: reg.CounterVec("mdx_intent_classified_total",
			"Above-threshold intent classifications by intent.", "intent"),
		Fulfilled: reg.CounterVec("mdx_intent_fulfilled_total",
			"Turns that executed a KB query, by intent.", "intent"),
		Feedback: reg.CounterVec("mdx_feedback_total",
			"Thumbs feedback by intent.", "intent", "thumbs"),
		AnswerCache: reg.CounterVec("mdx_answer_cache_total",
			"Answer-cache lookups by result (hit, miss).", "result"),
		SessionsLive: reg.Gauge("mdx_sessions_live",
			"Sessions currently held by the server."),
		SessionsOpened: reg.Counter("mdx_sessions_opened_total",
			"Sessions created."),
		SessionsEvicted: reg.CounterVec("mdx_sessions_evicted_total",
			"Sessions removed, by reason (closed, idle).", "reason"),
		HTTPRequests: reg.CounterVec("mdx_http_requests_total",
			"HTTP requests by path and status code.", "path", "code"),
		HTTPLatency: reg.HistogramVec("mdx_http_request_seconds",
			"HTTP request latency in seconds by path.", nil, "path"),
		HTTPInflight: reg.Gauge("mdx_http_inflight",
			"HTTP requests currently being served."),
		TurnLive: obs.NewRollingQuantile(TurnLiveWindow, TurnLiveSlots),
		Slow:     obs.NewSlowTraces(obs.DefaultSlowK),
		BundleInfo: reg.GaugeVec("mdx_bundle_info",
			"Live workspace-bundle version (1 = serving, 0 = retired).", "version"),
		Reloads: reg.CounterVec("mdx_reloads_total",
			"Bundle hot-reload attempts by result.", "result"),
		ReloadLatency: reg.Histogram("mdx_reload_seconds",
			"Latency of successful bundle swaps in seconds.", nil),
	}
	reg.QuantileGauges("mdx_turn_seconds_live",
		"Turn latency quantiles over the last 60 seconds.",
		TurnLiveQuantiles, m.TurnLive.Quantile)
	m.registerRuntimeGauges(reg)
	return m
}

// registerRuntimeGauges exposes the NLU scratch pool and offline worker
// pool counters as callback gauges: the subsystems already count
// atomically, so exposition just reads them.
func (m *Metrics) registerRuntimeGauges(reg *obs.Registry) {
	reg.GaugeFunc("mdx_nlu_scratch_gets_total",
		"Fused-NLU scratch buffers checked out of the pool.", func() int64 {
			gets, _ := nlu.ScratchStats()
			return int64(gets)
		})
	reg.GaugeFunc("mdx_nlu_scratch_allocs_total",
		"Fused-NLU scratch checkouts that allocated (pool misses).", func() int64 {
			_, allocs := nlu.ScratchStats()
			return int64(allocs)
		})
	reg.GaugeFunc("mdx_par_tasks_total",
		"Tasks processed by the deterministic worker pool.", func() int64 {
			tasks, _, _ := par.Stats()
			return int64(tasks)
		})
	reg.GaugeFunc("mdx_par_workers_total",
		"Worker goroutines spawned by the deterministic worker pool.", func() int64 {
			_, workers, _ := par.Stats()
			return int64(workers)
		})
	reg.GaugeFunc("mdx_par_fanouts_total",
		"Parallel fan-outs performed by the deterministic worker pool.", func() int64 {
			_, _, fanouts := par.Stats()
			return int64(fanouts)
		})
}

// Registry exposes the underlying registry (for the /metrics endpoint).
func (m *Metrics) Registry() *obs.Registry { return m.reg }

// observeTurn records one completed turn: total latency, per-stage
// latencies from the trace, and fallback/fulfillment counters.
func (m *Metrics) observeTurn(elapsed time.Duration, turn *Turn) {
	if m == nil {
		return
	}
	m.Turns.Inc()
	m.TurnLatency.Observe(elapsed.Seconds())
	m.TurnLive.Observe(elapsed.Seconds())
	for _, sp := range turn.Trace.Spans() {
		m.StageLatency.With(sp.Name).Observe(sp.Duration.Seconds())
	}
	if turn.Intent == "" {
		m.Fallbacks.Inc()
	}
	if turn.Answered {
		m.Fulfilled.With(turn.Intent).Inc()
	}
}
