package agent

import (
	"time"

	"ontoconv/internal/nlu"
	"ontoconv/internal/obs"
	"ontoconv/internal/par"
)

// Metrics is the agent's metric bundle, mirroring the per-intent usage and
// success-rate bookkeeping of the production deployment (§7, Figures
// 11-12): turn and per-stage latency, per-intent classification /
// fulfillment / feedback counters, and session lifecycle.
//
// A bundle comes in two shapes. NewMetricsOn keeps the historic unlabeled
// families (one agent per process). NewTenantMetricsOn partitions every
// agent-scoped family by a leading "tenant" label so many workspaces can
// share one registry; the handles here are pre-curried onto that tenant,
// so recording code is identical in both modes. HTTP serving families are
// process-level and stay unlabeled in both shapes.
type Metrics struct {
	reg *obs.Registry

	// Turn pipeline.
	Turns         *obs.Counter
	TurnLatency   *obs.Histogram
	StageLatency  *obs.HistogramVec // stage
	Fallbacks     *obs.Counter
	LowConfidence *obs.Counter

	// Live tail latency: high-resolution quantiles over the last
	// TurnLiveWindow (exposed as mdx_turn_seconds_live{quantile="…"}),
	// and the slowest-K turn traces with per-stage breakdowns
	// (GET /trace/slow).
	TurnLive *obs.RollingQuantile
	Slow     *obs.SlowTraces

	// Per-intent bookkeeping (Figure 11).
	Classified *obs.CounterVec // intent
	Fulfilled  *obs.CounterVec // intent
	Feedback   *obs.CounterVec // intent, thumbs

	// Answer cache (the per-turn fast path).
	AnswerCache *obs.CounterVec // result (hit, miss)

	// Session lifecycle.
	SessionsLive    *obs.Gauge
	SessionsOpened  *obs.Counter
	SessionsEvicted *obs.CounterVec // reason

	// HTTP serving.
	HTTPRequests *obs.CounterVec // path, code
	HTTPLatency  *obs.HistogramVec
	HTTPInflight *obs.Gauge

	// Artifact lifecycle: which bundle version is live (info-style gauge,
	// 1 for the serving generation, 0 for retired ones) and hot-reload
	// outcomes.
	BundleInfo    *obs.GaugeVec   // version
	Reloads       *obs.CounterVec // result (success, error)
	ReloadLatency *obs.Histogram
}

// TurnLiveWindow is the span of the live turn-latency quantile window,
// split into TurnLiveSlots ring slots.
const (
	TurnLiveWindow = 60 * time.Second
	TurnLiveSlots  = 6
)

// TurnLiveQuantiles are the quantiles exposed as live gauges.
var TurnLiveQuantiles = []float64{0.5, 0.9, 0.99}

// NewMetrics builds the bundle on a fresh registry.
func NewMetrics() *Metrics { return NewMetricsOn(obs.NewRegistry()) }

// NewMetricsOn builds the bundle on an existing registry, so callers can
// expose agent metrics next to their own. Families are unlabeled (the
// historic single-tenant shape); a registry must not mix this shape with
// NewTenantMetricsOn's labeled one.
func NewMetricsOn(reg *obs.Registry) *Metrics { return newMetricsOn(reg, "") }

// NewTenantMetricsOn builds the bundle on a shared registry with every
// agent-scoped family partitioned by a leading tenant label — the
// multi-workspace shape, one call per tenant. The returned handles are
// pre-curried onto the tenant, so agent and server code records through
// them exactly as in single-tenant mode. A tenant's bundle should be
// created once and kept for the process lifetime: counters must survive
// workspace eviction and rebuild.
func NewTenantMetricsOn(reg *obs.Registry, tenant string) *Metrics {
	return newMetricsOn(reg, tenant)
}

func newMetricsOn(reg *obs.Registry, tenant string) *Metrics {
	plain := tenant == ""
	counter := func(name, help string) *obs.Counter {
		if plain {
			return reg.Counter(name, help)
		}
		return reg.CounterVec(name, help, "tenant").With(tenant)
	}
	gauge := func(name, help string) *obs.Gauge {
		if plain {
			return reg.Gauge(name, help)
		}
		return reg.GaugeVec(name, help, "tenant").With(tenant)
	}
	histogram := func(name, help string, buckets []float64) *obs.Histogram {
		if plain {
			return reg.Histogram(name, help, buckets)
		}
		return reg.HistogramVec(name, help, buckets, "tenant").With(tenant)
	}
	counterVec := func(name, help string, labels ...string) *obs.CounterVec {
		if plain {
			return reg.CounterVec(name, help, labels...)
		}
		return reg.CounterVec(name, help, append([]string{"tenant"}, labels...)...).Curry(tenant)
	}
	gaugeVec := func(name, help string, labels ...string) *obs.GaugeVec {
		if plain {
			return reg.GaugeVec(name, help, labels...)
		}
		return reg.GaugeVec(name, help, append([]string{"tenant"}, labels...)...).Curry(tenant)
	}

	m := &Metrics{
		reg:   reg,
		Turns: counter("mdx_turns_total", "Conversation turns processed."),
		TurnLatency: histogram("mdx_turn_seconds",
			"End-to-end turn latency in seconds.", nil),
		Fallbacks: counter("mdx_fallback_total",
			"Turns answered by the fallback response (no intent routed)."),
		LowConfidence: counter("mdx_intent_low_confidence_total",
			"Classifications below the confidence threshold."),
		Classified: counterVec("mdx_intent_classified_total",
			"Above-threshold intent classifications by intent.", "intent"),
		Fulfilled: counterVec("mdx_intent_fulfilled_total",
			"Turns that executed a KB query, by intent.", "intent"),
		Feedback: counterVec("mdx_feedback_total",
			"Thumbs feedback by intent.", "intent", "thumbs"),
		AnswerCache: counterVec("mdx_answer_cache_total",
			"Answer-cache lookups by result (hit, miss).", "result"),
		SessionsLive: gauge("mdx_sessions_live",
			"Sessions currently held by the server."),
		SessionsOpened: counter("mdx_sessions_opened_total",
			"Sessions created."),
		SessionsEvicted: counterVec("mdx_sessions_evicted_total",
			"Sessions removed, by reason (closed, idle).", "reason"),
		TurnLive: obs.NewRollingQuantile(TurnLiveWindow, TurnLiveSlots),
		Slow:     obs.NewSlowTraces(obs.DefaultSlowK),
		BundleInfo: gaugeVec("mdx_bundle_info",
			"Live workspace-bundle version (1 = serving, 0 = retired).", "version"),
		Reloads: counterVec("mdx_reloads_total",
			"Bundle hot-reload attempts by result.", "result"),
		ReloadLatency: histogram("mdx_reload_seconds",
			"Latency of successful bundle swaps in seconds.", nil),
	}
	// Stage labels follow any tenant label.
	if plain {
		m.StageLatency = reg.HistogramVec("mdx_turn_stage_seconds",
			"Per-stage turn latency in seconds.", nil, "stage")
	} else {
		m.StageLatency = reg.HistogramVec("mdx_turn_stage_seconds",
			"Per-stage turn latency in seconds.", nil, "tenant", "stage").Curry(tenant)
	}
	// HTTP families are process-level: one server fronts every workspace,
	// so both shapes register the same unlabeled families.
	m.HTTPRequests, m.HTTPLatency, m.HTTPInflight = registerHTTPMetrics(reg)
	liveHelp := "Turn latency quantiles over the last 60 seconds."
	if plain {
		reg.QuantileGauges("mdx_turn_seconds_live", liveHelp,
			TurnLiveQuantiles, m.TurnLive.Quantile)
	} else {
		reg.QuantileGaugesWith("mdx_turn_seconds_live", liveHelp,
			[]string{"tenant"}, []string{tenant},
			TurnLiveQuantiles, m.TurnLive.Quantile)
	}
	m.registerRuntimeGauges(reg)
	return m
}

// registerHTTPMetrics registers the process-level HTTP serving families
// (idempotent: re-registration returns the existing families).
func registerHTTPMetrics(reg *obs.Registry) (*obs.CounterVec, *obs.HistogramVec, *obs.Gauge) {
	return reg.CounterVec("mdx_http_requests_total",
			"HTTP requests by path and status code.", "path", "code"),
		reg.HistogramVec("mdx_http_request_seconds",
			"HTTP request latency in seconds by path.", nil, "path"),
		reg.Gauge("mdx_http_inflight",
			"HTTP requests currently being served.")
}

// registerRuntimeGauges exposes the NLU scratch pool and offline worker
// pool counters as callback gauges: the subsystems already count
// atomically, so exposition just reads them.
func (m *Metrics) registerRuntimeGauges(reg *obs.Registry) {
	reg.GaugeFunc("mdx_nlu_scratch_gets_total",
		"Fused-NLU scratch buffers checked out of the pool.", func() int64 {
			gets, _ := nlu.ScratchStats()
			return int64(gets)
		})
	reg.GaugeFunc("mdx_nlu_scratch_allocs_total",
		"Fused-NLU scratch checkouts that allocated (pool misses).", func() int64 {
			_, allocs := nlu.ScratchStats()
			return int64(allocs)
		})
	reg.GaugeFunc("mdx_par_tasks_total",
		"Tasks processed by the deterministic worker pool.", func() int64 {
			tasks, _, _ := par.Stats()
			return int64(tasks)
		})
	reg.GaugeFunc("mdx_par_workers_total",
		"Worker goroutines spawned by the deterministic worker pool.", func() int64 {
			_, workers, _ := par.Stats()
			return int64(workers)
		})
	reg.GaugeFunc("mdx_par_fanouts_total",
		"Parallel fan-outs performed by the deterministic worker pool.", func() int64 {
			_, _, fanouts := par.Stats()
			return int64(fanouts)
		})
}

// Registry exposes the underlying registry (for the /metrics endpoint).
func (m *Metrics) Registry() *obs.Registry { return m.reg }

// observeTurn records one completed turn: total latency, per-stage
// latencies from the trace, and fallback/fulfillment counters.
func (m *Metrics) observeTurn(elapsed time.Duration, turn *Turn) {
	if m == nil {
		return
	}
	m.Turns.Inc()
	m.TurnLatency.Observe(elapsed.Seconds())
	m.TurnLive.Observe(elapsed.Seconds())
	for _, sp := range turn.Trace.Spans() {
		m.StageLatency.With(sp.Name).Observe(sp.Duration.Seconds())
	}
	if turn.Intent == "" {
		m.Fallbacks.Inc()
	}
	if turn.Answered {
		m.Fulfilled.With(turn.Intent).Inc()
	}
}
