// Package agent implements the online half of the system (paper §2,
// Figure 1b): each user utterance is classified against the bootstrapped
// intents, entities are recognized and persisted in the conversation
// context, the dialogue tree elicits missing required entities ("slot
// filling"), and completed requests instantiate the intent's structured
// query template, execute it against the knowledge base, and render a
// natural-language answer.
package agent

import (
	"fmt"
	"sort"

	"ontoconv/internal/core"
	"ontoconv/internal/dialogue"
	"ontoconv/internal/kb"
	"ontoconv/internal/nlu"
)

// Options configures an agent.
type Options struct {
	// Classifier is the intent classifier; nil selects logistic
	// regression (the experiments' default).
	Classifier nlu.Classifier
	// MinConfidence is the intent-confidence threshold below which the
	// utterance is treated as an incremental modification of the current
	// request rather than a new one (§6.3).
	MinConfidence float64
	// Definitions overrides the glossary for definition-request repair.
	Definitions map[string]string
	// MaxListed caps the values listed in an answer before "…".
	MaxListed int
	// Greeting overrides the conversation-opening line.
	Greeting string
	// Metrics overrides the agent's metric bundle; nil creates a fresh
	// one on its own registry.
	Metrics *Metrics
}

// Agent is a conversation agent over one bootstrapped space and KB.
type Agent struct {
	space    *core.Space
	base     *kb.KB
	clf      nlu.Classifier
	rec      *nlu.Recognizer
	tree     *dialogue.Tree
	table    *dialogue.LogicTable
	defs     map[string]string
	minConf  float64
	maxList  int
	greeting string
	// cmIntents marks conversation-management intent names.
	cmIntents map[string]bool
	// generalIntents maps a concept name -> its *_GENERAL intent name.
	generalIntents map[string]string
	// proposals maps a general concept -> ordered lookup intents to
	// propose (the §6.3 "Would you like to see the precautions of …?"
	// flow).
	proposals map[string][]string
	// entityKinds maps entity type -> kind, to know which mentions enter
	// the context.
	entityKinds map[string]string
	// metrics is the serving-time metric bundle (never nil after New).
	metrics *Metrics
}

// New trains the classifier on the space's examples, builds the entity
// recognizer from its entity definitions, compiles the dialogue tree, and
// returns a ready agent.
func New(space *core.Space, base *kb.KB, opts Options) (*Agent, error) {
	clf := opts.Classifier
	if clf == nil {
		clf = nlu.NewLogisticRegression()
	}
	var examples []nlu.Example
	for _, te := range space.AllExamples() {
		examples = append(examples, nlu.Example{Text: te.Text, Intent: te.Intent})
	}
	if err := clf.Train(examples); err != nil {
		return nil, fmt.Errorf("agent: train: %w", err)
	}

	rec := nlu.NewRecognizer()
	entityKinds := map[string]string{}
	for _, def := range space.Entities {
		entityKinds[def.Name] = def.Kind
		for _, v := range def.Values {
			rec.Add(def.Name, v.Value, v.Synonyms...)
		}
	}

	table := dialogue.BuildLogicTable(space)
	tree := dialogue.BuildTree(space, table)

	minConf := opts.MinConfidence
	if minConf <= 0 {
		minConf = 0.25
	}
	maxList := opts.MaxListed
	if maxList <= 0 {
		maxList = 10
	}
	defs := opts.Definitions
	if defs == nil {
		defs = core.Definitions
	}
	greeting := opts.Greeting
	if greeting == "" {
		greeting = "Hello. This is Micromedex. If this is your first time, just ask for help. How can I help you today?"
	}
	metrics := opts.Metrics
	if metrics == nil {
		metrics = NewMetrics()
	}

	a := &Agent{
		space: space, base: base, clf: clf, rec: rec, tree: tree, table: table,
		defs: defs, minConf: minConf, maxList: maxList, greeting: greeting,
		cmIntents:      map[string]bool{},
		generalIntents: map[string]string{},
		proposals:      map[string][]string{},
		entityKinds:    entityKinds,
		metrics:        metrics,
	}
	for _, in := range space.Intents {
		switch in.Kind {
		case core.ConversationPattern:
			a.cmIntents[in.Name] = true
		case core.GeneralEntityPattern:
			a.generalIntents[in.AnswerConcept] = in.Name
			a.proposals[in.AnswerConcept] = a.proposalIntents(in.AnswerConcept)
		}
	}
	return a, nil
}

// proposalIntents orders the lookup intents proposable when the user types
// only an entity name: precaution-style lookups first (matching the §6.3
// transcript), then the rest alphabetically.
func (a *Agent) proposalIntents(concept string) []string {
	deps := a.space.Completion.DependentsOfKey[concept]
	depSet := map[string]bool{}
	for _, d := range deps {
		depSet[d] = true
	}
	var names []string
	for _, in := range a.space.Intents {
		if in.Kind != core.LookupPattern || !depSet[in.AnswerConcept] {
			continue
		}
		needsConcept := false
		extraRequired := 0
		for _, r := range in.Required {
			if r.Entity == concept {
				needsConcept = true
			} else {
				extraRequired++
			}
		}
		if needsConcept && extraRequired == 0 {
			names = append(names, in.Name)
		}
	}
	sort.Slice(names, func(i, j int) bool {
		pi, pj := a.space.Intent(names[i]), a.space.Intent(names[j])
		iPrec := pi.AnswerConcept == "Precaution"
		jPrec := pj.AnswerConcept == "Precaution"
		if iPrec != jPrec {
			return iPrec
		}
		return names[i] < names[j]
	})
	return names
}

// Greeting returns the conversation-opening line (§6.3 line 01).
func (a *Agent) Greeting() string { return a.greeting }

// Space exposes the agent's conversation space.
func (a *Agent) Space() *core.Space { return a.space }

// Classifier exposes the trained classifier (for evaluation).
func (a *Agent) Classifier() nlu.Classifier { return a.clf }

// Recognizer exposes the entity recognizer (for evaluation and tests).
func (a *Agent) Recognizer() *nlu.Recognizer { return a.rec }

// Tree exposes the compiled dialogue tree.
func (a *Agent) Tree() *dialogue.Tree { return a.tree }

// LogicTable exposes the generated Dialogue Logic Table.
func (a *Agent) LogicTable() *dialogue.LogicTable { return a.table }

// Metrics exposes the agent's metric bundle (for the /metrics endpoint
// and evaluation).
func (a *Agent) Metrics() *Metrics { return a.metrics }
