// Package agent implements the online half of the system (paper §2,
// Figure 1b): each user utterance is classified against the bootstrapped
// intents, entities are recognized and persisted in the conversation
// context, the dialogue tree elicits missing required entities ("slot
// filling"), and completed requests instantiate the intent's structured
// query template, execute it against the knowledge base, and render a
// natural-language answer.
//
// All compiled state — space, trained classifier, recognizer, dialogue
// tree — lives in an immutable runtime behind an atomic pointer. An agent
// is constructed either the classic way (New trains from a Space) or from
// a compiled workspace bundle (NewFromBundle, no retraining), and a live
// agent can hot-swap to a new bundle (InstallBundle): in-flight turns
// finish on the runtime they started with, new turns see the new version,
// and sessions survive the swap.
package agent

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"
	"time"

	"ontoconv/internal/bundle"
	"ontoconv/internal/core"
	"ontoconv/internal/dialogue"
	"ontoconv/internal/kb"
	"ontoconv/internal/nlu"
	"ontoconv/internal/sqlx"
)

// Options configures an agent.
type Options struct {
	// Classifier is the intent classifier; nil selects logistic
	// regression (the experiments' default). Ignored when constructing
	// from a bundle, which carries its own trained model.
	Classifier nlu.Classifier
	// MinConfidence is the intent-confidence threshold below which the
	// utterance is treated as an incremental modification of the current
	// request rather than a new one (§6.3). Zero selects the default
	// (0.25); any negative value disables the threshold entirely.
	MinConfidence float64
	// Definitions overrides the glossary for definition-request repair.
	Definitions map[string]string
	// MaxListed caps the values listed in an answer before "…". Zero
	// selects the default (10); any negative value removes the cap.
	MaxListed int
	// Greeting overrides the conversation-opening line.
	Greeting string
	// Metrics overrides the agent's metric bundle; nil creates a fresh
	// one on its own registry.
	Metrics *Metrics
	// AnswerCache bounds the per-generation LRU answer cache. Zero
	// selects the default (DefaultAnswerCacheSize); any negative value
	// disables caching.
	AnswerCache int
	// DisablePlans forces the interpreter for every template (no
	// precompiled query plans). For benchmarking and differential tests.
	DisablePlans bool
}

// SpaceVersion is the version label reported for runtimes trained
// directly from a Space rather than loaded from a bundle.
const SpaceVersion = "space"

// runtime is one immutable generation of compiled serving state. It is
// fully constructed before being published to the agent's atomic pointer
// and never mutated afterwards, so turns read it lock-free.
type runtime struct {
	space    *core.Space
	base     *kb.KB
	clf      nlu.Classifier
	rec      *nlu.Recognizer
	tree     *dialogue.Tree
	table    *dialogue.LogicTable
	defs     map[string]string
	minConf  float64
	maxList  int
	greeting string
	// version identifies the artifact generation (bundle Version(), or
	// SpaceVersion for space-trained runtimes).
	version string
	// cmIntents marks conversation-management intent names.
	cmIntents map[string]bool
	// generalIntents maps a concept name -> its *_GENERAL intent name.
	generalIntents map[string]string
	// proposals maps a general concept -> ordered lookup intents to
	// propose (the §6.3 "Would you like to see the precautions of …?"
	// flow).
	proposals map[string][]string
	// entityKinds maps entity type -> kind, to know which mentions enter
	// the context.
	entityKinds map[string]string
	// intents maps intent name -> definition, replacing the space's
	// linear scan on the per-turn path.
	intents map[string]*core.Intent
	// plans holds one compiled query plan per template intent. An intent
	// absent here (plan compilation failed, or DisablePlans) falls back
	// to Instantiate + Execute.
	plans map[string]*sqlx.Plan
	// cache is the per-generation answer cache (nil when disabled). A
	// bundle swap replaces the runtime and with it the cache, so stale
	// generations can never be served.
	cache *answerCache
	// metrics is the serving-time metric bundle, shared across runtime
	// generations (never nil).
	metrics *Metrics
}

// Agent is a conversation agent over one bootstrapped space and KB.
type Agent struct {
	rt atomic.Pointer[runtime]
	// metrics is shared across runtime generations so counters survive
	// hot swaps.
	metrics *Metrics
	// opts remembers the construction options so bundle swaps keep the
	// caller's thresholds and overrides.
	opts Options
}

// New trains the classifier on the space's examples, builds the entity
// recognizer from its entity definitions, compiles the dialogue tree, and
// returns a ready agent.
func New(space *core.Space, base *kb.KB, opts Options) (*Agent, error) {
	clf := opts.Classifier
	if clf == nil {
		clf = nlu.NewLogisticRegression()
	}
	all := space.AllExamples()
	examples := make([]nlu.Example, 0, len(all))
	for _, te := range all {
		examples = append(examples, nlu.Example{Text: te.Text, Intent: te.Intent})
	}
	if err := clf.Train(examples); err != nil {
		return nil, fmt.Errorf("agent: train: %w", err)
	}

	rec := nlu.NewRecognizer()
	for _, def := range space.Entities {
		for _, v := range def.Values {
			rec.Add(def.Name, v.Value, v.Synonyms...)
		}
	}

	table := dialogue.BuildLogicTable(space)
	tree := dialogue.BuildTree(space, table)
	return newAgent(space, base, clf, rec, table, tree, SpaceVersion, opts)
}

// NewFromBundle builds an agent from a compiled workspace bundle: no
// retraining, the bundle's trained classifier and prebuilt artifacts are
// served as-is. opts.Classifier is ignored.
func NewFromBundle(b *bundle.Bundle, base *kb.KB, opts Options) (*Agent, error) {
	if b == nil {
		return nil, fmt.Errorf("agent: nil bundle")
	}
	return newAgent(b.Space, base, b.Classifier, b.Recognizer, b.LogicTable, b.Tree, b.Version(), opts)
}

func newAgent(space *core.Space, base *kb.KB, clf nlu.Classifier, rec *nlu.Recognizer,
	table *dialogue.LogicTable, tree *dialogue.Tree, version string, opts Options) (*Agent, error) {
	metrics := opts.Metrics
	if metrics == nil {
		metrics = NewMetrics()
	}
	a := &Agent{metrics: metrics, opts: opts}
	rt, err := a.newRuntime(space, base, clf, rec, table, tree, version)
	if err != nil {
		return nil, err
	}
	a.rt.Store(rt)
	metrics.BundleInfo.With(version).Set(1)
	metrics.Slow.SetGeneration(version)
	return a, nil
}

// newRuntime assembles one immutable runtime generation from compiled
// artifacts, applying the agent's stored options.
func (a *Agent) newRuntime(space *core.Space, base *kb.KB, clf nlu.Classifier, rec *nlu.Recognizer,
	table *dialogue.LogicTable, tree *dialogue.Tree, version string) (*runtime, error) {
	if space == nil || clf == nil || rec == nil || table == nil || tree == nil {
		return nil, fmt.Errorf("agent: incomplete runtime artifacts")
	}
	opts := a.opts
	minConf := opts.MinConfidence
	switch {
	case minConf < 0:
		minConf = 0 // explicitly disabled
	case minConf == 0:
		minConf = 0.25
	}
	maxList := opts.MaxListed
	switch {
	case maxList < 0:
		maxList = math.MaxInt // explicitly uncapped
	case maxList == 0:
		maxList = 10
	}
	defs := opts.Definitions
	if defs == nil {
		defs = core.Definitions
	}
	greeting := opts.Greeting
	if greeting == "" {
		greeting = core.DefaultGreeting
	}

	cacheSize := opts.AnswerCache
	if cacheSize == 0 {
		cacheSize = DefaultAnswerCacheSize
	}

	rt := &runtime{
		space: space, base: base, clf: clf, rec: rec, tree: tree, table: table,
		defs: defs, minConf: minConf, maxList: maxList, greeting: greeting,
		version:        version,
		cmIntents:      map[string]bool{},
		generalIntents: map[string]string{},
		proposals:      map[string][]string{},
		entityKinds:    map[string]string{},
		intents:        make(map[string]*core.Intent, len(space.Intents)),
		plans:          map[string]*sqlx.Plan{},
		cache:          newAnswerCache(cacheSize),
		metrics:        a.metrics,
	}
	for _, def := range space.Entities {
		rt.entityKinds[def.Name] = def.Kind
	}
	for i := range space.Intents {
		in := &space.Intents[i]
		rt.intents[in.Name] = in
		switch in.Kind {
		case core.ConversationPattern:
			rt.cmIntents[in.Name] = true
		case core.GeneralEntityPattern:
			rt.generalIntents[in.AnswerConcept] = in.Name
			rt.proposals[in.AnswerConcept] = rt.proposalIntents(in.AnswerConcept)
		}
		if in.Template != nil && !opts.DisablePlans {
			// A template the planner rejects is served by the
			// interpreter instead; plan compilation is best-effort.
			if plan, err := in.Template.Prepare(base); err == nil {
				rt.plans[in.Name] = plan
			}
		}
	}
	return rt, nil
}

// intent returns the named intent definition from the precomputed map, or
// nil.
func (a *runtime) intent(name string) *core.Intent {
	if name == "" {
		return nil
	}
	return a.intents[name]
}

// runtime returns the current generation; every turn pins one generation
// for its whole duration.
func (a *Agent) runtime() *runtime { return a.rt.Load() }

// InstallBundle atomically swaps the agent onto a new compiled bundle.
// The new runtime is fully constructed and validated off to the side
// before the swap; on any error the current runtime keeps serving.
// In-flight turns complete on the generation they started with; sessions
// and accumulated metrics are preserved.
func (a *Agent) InstallBundle(b *bundle.Bundle) error {
	start := time.Now()
	old := a.rt.Load()
	if b == nil {
		a.metrics.Reloads.With("error").Inc()
		return fmt.Errorf("agent: install: nil bundle")
	}
	rt, err := a.newRuntime(b.Space, old.base, b.Classifier, b.Recognizer, b.LogicTable, b.Tree, b.Version())
	if err != nil {
		a.metrics.Reloads.With("error").Inc()
		return err
	}
	a.rt.Store(rt)
	// Rotate the slow-trace reservoir onto the new generation: traces
	// recorded against the retired artifacts are dropped, and stragglers
	// still finishing on the old runtime will be rejected at offer time.
	a.metrics.Slow.SetGeneration(rt.version)
	if old.version != rt.version {
		a.metrics.BundleInfo.With(old.version).Set(0)
	}
	a.metrics.BundleInfo.With(rt.version).Set(1)
	a.metrics.Reloads.With("success").Inc()
	a.metrics.ReloadLatency.Observe(time.Since(start).Seconds())
	return nil
}

// proposalIntents orders the lookup intents proposable when the user types
// only an entity name: precaution-style lookups first (matching the §6.3
// transcript), then the rest alphabetically.
func (a *runtime) proposalIntents(concept string) []string {
	deps := a.space.Completion.DependentsOfKey[concept]
	depSet := map[string]bool{}
	for _, d := range deps {
		depSet[d] = true
	}
	var names []string
	for _, in := range a.space.Intents {
		if in.Kind != core.LookupPattern || !depSet[in.AnswerConcept] {
			continue
		}
		needsConcept := false
		extraRequired := 0
		for _, r := range in.Required {
			if r.Entity == concept {
				needsConcept = true
			} else {
				extraRequired++
			}
		}
		if needsConcept && extraRequired == 0 {
			names = append(names, in.Name)
		}
	}
	sort.Slice(names, func(i, j int) bool {
		pi, pj := a.space.Intent(names[i]), a.space.Intent(names[j])
		iPrec := pi.AnswerConcept == "Precaution"
		jPrec := pj.AnswerConcept == "Precaution"
		if iPrec != jPrec {
			return iPrec
		}
		return names[i] < names[j]
	})
	return names
}

// Greeting returns the conversation-opening line (§6.3 line 01).
func (a *Agent) Greeting() string { return a.runtime().greeting }

// Space exposes the agent's conversation space.
func (a *Agent) Space() *core.Space { return a.runtime().space }

// Classifier exposes the trained classifier (for evaluation).
func (a *Agent) Classifier() nlu.Classifier { return a.runtime().clf }

// Recognizer exposes the entity recognizer (for evaluation and tests).
func (a *Agent) Recognizer() *nlu.Recognizer { return a.runtime().rec }

// Tree exposes the compiled dialogue tree.
func (a *Agent) Tree() *dialogue.Tree { return a.runtime().tree }

// LogicTable exposes the generated Dialogue Logic Table.
func (a *Agent) LogicTable() *dialogue.LogicTable { return a.runtime().table }

// Version returns the live artifact generation: the bundle version the
// agent serves from, or SpaceVersion when trained in-process.
func (a *Agent) Version() string { return a.runtime().version }

// Metrics exposes the agent's metric bundle (for the /metrics endpoint
// and evaluation).
func (a *Agent) Metrics() *Metrics { return a.metrics }
