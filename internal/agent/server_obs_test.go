package agent_test

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"ontoconv/internal/agent"
	"ontoconv/internal/obs"
)

// obsFixture builds a server with a fresh metric bundle (the shared
// fixture agent would accumulate counts across tests).
func obsFixture(t *testing.T) (*agent.Server, *httptest.Server, *agent.Metrics) {
	t.Helper()
	fixture(t) // ensure bootstrap ran; reuse its space and KB
	m := agent.NewMetrics()
	a, err := agent.New(space, base, agent.Options{Metrics: m})
	if err != nil {
		t.Fatal(err)
	}
	srv := agent.NewServer(a)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts, m
}

func scrape(t *testing.T, ts *httptest.Server) string {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Fatalf("/metrics content type %q", ct)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// metricValue extracts the first sample value of a metric line matching
// the given prefix (name or name{labels…}).
func metricValue(t *testing.T, exposition, prefix string) float64 {
	t.Helper()
	for _, line := range strings.Split(exposition, "\n") {
		if !strings.HasPrefix(line, prefix) {
			continue
		}
		rest := strings.TrimSpace(line[len(prefix):])
		// Skip longer label sets that share the prefix.
		if i := strings.LastIndex(rest, " "); i >= 0 {
			rest = rest[i+1:]
		}
		v, err := strconv.ParseFloat(rest, 64)
		if err != nil {
			continue
		}
		return v
	}
	t.Fatalf("no metric with prefix %q in:\n%s", prefix, exposition)
	return 0
}

// TestServerConcurrentSessions drives N sessions concurrently (detecting
// data races under -race) and then checks the exposed counters and
// histogram add up.
func TestServerConcurrentSessions(t *testing.T) {
	_, ts, _ := obsFixture(t)

	const sessions = 8
	const turnsPer = 4
	var wg sync.WaitGroup
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			id := fmt.Sprintf("c%d", i)
			chat(t, ts, id, "show me drugs that treat psoriasis")
			chat(t, ts, id, "pediatric")
			chat(t, ts, id, "precautions for Aspirin")
			chat(t, ts, id, "what is the dosage of Metformin")
		}(i)
	}
	wg.Wait()

	out := scrape(t, ts)
	total := sessions * turnsPer
	if got := metricValue(t, out, "mdx_turns_total"); got != float64(total) {
		t.Fatalf("mdx_turns_total = %v, want %d", got, total)
	}
	if got := metricValue(t, out, "mdx_turn_seconds_count"); got != float64(total) {
		t.Fatalf("mdx_turn_seconds_count = %v, want %d", got, total)
	}
	// The terminal histogram bucket must equal the observation count.
	if got := metricValue(t, out, `mdx_turn_seconds_bucket{le="+Inf"}`); got != float64(total) {
		t.Fatalf("+Inf bucket = %v, want %d", got, total)
	}
	// Cumulative buckets must be monotonically non-decreasing.
	re := regexp.MustCompile(`mdx_turn_seconds_bucket\{le="[^"]+"\} (\d+)`)
	prev := -1.0
	for _, m := range re.FindAllStringSubmatch(out, -1) {
		v, _ := strconv.ParseFloat(m[1], 64)
		if v < prev {
			t.Fatalf("bucket counts not cumulative:\n%s", out)
		}
		prev = v
	}
	// Per-intent classification counters (Figure 11 bookkeeping): each
	// session classified the treatment, precaution and dosage requests.
	if got := metricValue(t, out, `mdx_intent_classified_total{intent="Drugs That Treat Condition"}`); got < sessions {
		t.Fatalf("treatment intent counter = %v, want >= %d", got, sessions)
	}
	if got := metricValue(t, out, `mdx_intent_fulfilled_total{intent="Precautions of Drug"}`); got != sessions {
		t.Fatalf("precaution fulfilled counter = %v, want %d", got, sessions)
	}
	// Per-stage latency histogram is present for every pipeline stage.
	for _, stage := range []string{"entity_recognition", "intent_classification", "slot_filling", "kb_execute"} {
		if got := metricValue(t, out, fmt.Sprintf(`mdx_turn_stage_seconds_count{stage="%s"}`, stage)); got == 0 {
			t.Fatalf("no %s stage observations", stage)
		}
	}
	if got := metricValue(t, out, "mdx_sessions_live"); got != sessions {
		t.Fatalf("mdx_sessions_live = %v, want %d", got, sessions)
	}
	if got := metricValue(t, out, `mdx_http_requests_total{path="/chat",code="200"}`); got != float64(total) {
		t.Fatalf("http request counter = %v, want %d", got, total)
	}
}

func TestServerTraceEndpoint(t *testing.T) {
	_, ts, _ := obsFixture(t)
	chat(t, ts, "tr", "precautions for Aspirin")

	resp, err := http.Get(ts.URL + "/trace?session=tr")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/trace status %d", resp.StatusCode)
	}
	var tr agent.TraceResponse
	if err := json.NewDecoder(resp.Body).Decode(&tr); err != nil {
		t.Fatal(err)
	}
	if tr.Session != "tr" || len(tr.Traces) != 1 {
		t.Fatalf("trace response = %+v", tr)
	}
	got := map[string]obs.Span{}
	for _, sp := range tr.Traces[0].Spans {
		got[sp.Name] = sp
	}
	// Every pipeline stage of a fully-answered turn must have a span.
	for _, stage := range []string{
		"entity_recognition", "intent_classification", "slot_filling",
		"sql_instantiate", "kb_execute", "answer_rendering",
	} {
		if _, ok := got[stage]; !ok {
			t.Fatalf("missing %q span in %v", stage, tr.Traces[0].Spans)
		}
	}
	// Key attributes survive the round trip.
	attrs := map[string]string{}
	for _, a := range got["intent_classification"].Attrs {
		attrs[a.Key] = a.Value
	}
	if attrs["intent"] != "Precautions of Drug" {
		t.Fatalf("classification attrs = %v", attrs)
	}
	if got["kb_execute"].Duration <= 0 {
		t.Fatalf("kb_execute duration = %v", got["kb_execute"].Duration)
	}

	// ?all=1 returns one trace per turn.
	chat(t, ts, "tr", "what is the dosage of Metformin")
	resp2, err := http.Get(ts.URL + "/trace?session=tr&all=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var tr2 agent.TraceResponse
	if err := json.NewDecoder(resp2.Body).Decode(&tr2); err != nil {
		t.Fatal(err)
	}
	if len(tr2.Traces) != 2 {
		t.Fatalf("all traces = %d, want 2", len(tr2.Traces))
	}

	// Unknown session is a 404.
	resp3, _ := http.Get(ts.URL + "/trace?session=ghost")
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusNotFound {
		t.Fatalf("ghost trace status %d", resp3.StatusCode)
	}
}

func TestServerIdleEviction(t *testing.T) {
	srv, ts, m := obsFixture(t)
	srv.SetIdleTTL(10 * time.Millisecond)

	chat(t, ts, "idle", "precautions for Aspirin")
	if m.SessionsLive.Value() != 1 {
		t.Fatalf("live = %d", m.SessionsLive.Value())
	}
	time.Sleep(20 * time.Millisecond)
	// A metrics scrape doubles as the janitor.
	out := scrape(t, ts)
	if got := metricValue(t, out, `mdx_sessions_evicted_total{reason="idle"}`); got != 1 {
		t.Fatalf("idle evictions = %v", got)
	}
	if m.SessionsLive.Value() != 0 {
		t.Fatalf("live after eviction = %d", m.SessionsLive.Value())
	}
	resp, _ := http.Get(ts.URL + "/context?session=idle")
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("evicted session still present: %d", resp.StatusCode)
	}

	// A fresh turn under the TTL is not evicted.
	chat(t, ts, "fresh", "precautions for Aspirin")
	chat(t, ts, "fresh", "goodbye")
	out = scrape(t, ts)
	if got := metricValue(t, out, `mdx_sessions_evicted_total{reason="closed"}`); got != 1 {
		t.Fatalf("closed evictions = %v", got)
	}
}

func TestServerFeedbackMetrics(t *testing.T) {
	_, ts, m := obsFixture(t)
	chat(t, ts, "fbm", "precautions for Aspirin")
	resp := postJSON(t, ts.URL+"/feedback", agent.FeedbackRequest{Session: "fbm", Thumbs: "down"})
	resp.Body.Close()
	if got := m.Feedback.With("Precautions of Drug", "down").Value(); got != 1 {
		t.Fatalf("feedback counter = %d", got)
	}
	out := scrape(t, ts)
	if got := metricValue(t, out, `mdx_feedback_total{intent="Precautions of Drug",thumbs="down"}`); got != 1 {
		t.Fatalf("feedback exposition = %v", got)
	}
}

func TestTurnTraceAttachedForLibraryUse(t *testing.T) {
	a := fixture(t)
	s := agent.NewSession()
	a.Respond(s, "precautions for Aspirin")
	turn := s.LastTurn()
	if turn == nil || turn.Trace == nil {
		t.Fatal("no trace on turn")
	}
	spans := turn.Trace.Spans()
	if len(spans) == 0 {
		t.Fatal("no spans recorded")
	}
	data := turn.Trace.Snapshot()
	if data.Duration <= 0 {
		t.Fatalf("trace duration = %v", data.Duration)
	}
}
