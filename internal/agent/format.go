package agent

import (
	"fmt"
	"sort"
	"strings"

	"ontoconv/internal/core"
	"ontoconv/internal/dialogue"
	"ontoconv/internal/sqlx"
)

// formatAnswer renders a query result as the agent's natural-language
// reply (the NLG half of §1's requirements): the intent's response
// template with entity values substituted, followed by the result list —
// grouped by the relation's qualifying property when present ("Effective:
// Acitretin, Adalimumab …", §6.3 line 05).
func (a *runtime) formatAnswer(in *core.Intent, ctx *dialogue.Context, res *sqlx.Result) string {
	header := a.renderHeader(in, ctx)
	if len(res.Rows) == 0 {
		return strings.TrimSuffix(header, ":") + ": I couldn't find any results. Please modify your search."
	}
	rows := res.Strings()
	var body string
	switch {
	case len(res.Columns) >= 2 && in.Kind == core.DirectRelationPattern:
		body = groupedList(rows, a.maxList)
	case anyLong(rows):
		var parts []string
		for i, r := range rows {
			if i == a.maxList {
				parts = append(parts, "…")
				break
			}
			parts = append(parts, strings.Join(nonEmpty(r), " — "))
		}
		body = "\n" + strings.Join(parts, "\n")
	default:
		var vals []string
		for i, r := range rows {
			if i == a.maxList {
				vals = append(vals, "…")
				break
			}
			vals = append(vals, strings.Join(nonEmpty(r), " — "))
		}
		body = " " + strings.Join(vals, ", ")
	}
	return header + body
}

// renderHeader substitutes {{Entity}} placeholders in the response
// template with context values and appends bound value entities not named
// by the template ("… for pediatric").
func (a *runtime) renderHeader(in *core.Intent, ctx *dialogue.Context) string {
	header := in.Response
	if header == "" {
		header = "Here is what I found:"
	}
	substituted := map[string]bool{}
	for _, spec := range append(append([]core.EntitySpec{}, in.Required...), in.Optional...) {
		ph := "{{" + spec.Param + "}}"
		if v, ok := ctx.Value(spec.Entity); ok && strings.Contains(header, ph) {
			header = strings.ReplaceAll(header, ph, v)
			substituted[spec.Entity] = true
		}
	}
	// Drop unresolved placeholders.
	for {
		i := strings.Index(header, "{{")
		if i < 0 {
			break
		}
		j := strings.Index(header[i:], "}}")
		if j < 0 {
			break
		}
		header = header[:i] + header[i+j+2:]
	}
	header = strings.Join(strings.Fields(header), " ") // tidy double spaces
	// Mention remaining bound value entities: "… for pediatric".
	var extras []string
	for _, spec := range in.Required {
		if substituted[spec.Entity] {
			continue
		}
		if a.entityKinds[spec.Entity] == "value" {
			if v, ok := ctx.Value(spec.Entity); ok {
				extras = append(extras, v)
			}
		}
	}
	if len(extras) > 0 {
		header = strings.TrimSuffix(header, ":") + " for " + strings.Join(extras, ", ") + ":"
	}
	return header
}

// groupedList renders two-column rows grouped by the second column:
// "Effective: A, B. Possibly Effective: C." Groups are ordered Effective
// first, then alphabetically.
func groupedList(rows [][]string, maxList int) string {
	groups := map[string][]string{}
	var order []string
	for _, r := range rows {
		if len(r) < 2 {
			continue
		}
		key := r[1]
		if len(groups[key]) == 0 {
			order = append(order, key)
		}
		groups[key] = append(groups[key], r[0])
	}
	sort.Slice(order, func(i, j int) bool {
		if (order[i] == "Effective") != (order[j] == "Effective") {
			return order[i] == "Effective"
		}
		return order[i] < order[j]
	})
	var parts []string
	for _, key := range order {
		vals := groups[key]
		if len(vals) > maxList {
			vals = append(vals[:maxList:maxList], "…")
		}
		label := key
		if label == "" {
			label = "Listed"
		}
		parts = append(parts, fmt.Sprintf("%s: %s", label, strings.Join(vals, ", ")))
	}
	return "\n" + strings.Join(parts, "\n")
}

func anyLong(rows [][]string) bool {
	for _, r := range rows {
		for _, v := range r {
			if len(v) > 60 {
				return true
			}
		}
	}
	return false
}

func nonEmpty(row []string) []string {
	var out []string
	for _, v := range row {
		if v != "" {
			out = append(out, v)
		}
	}
	return out
}
