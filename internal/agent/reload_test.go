package agent_test

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"ontoconv/internal/agent"
	"ontoconv/internal/bundle"
	"ontoconv/internal/core"
	"ontoconv/internal/nlu"
)

// bundlePair compiles two distinct bundles from the fixture space: the
// original, and one from a minimally mutated copy (one extra training
// example), so their content-addressed versions differ.
func bundlePair(t *testing.T) (*bundle.Bundle, *bundle.Bundle) {
	t.Helper()
	fixture(t)
	b1, err := bundle.Compile(space, bundle.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var mutated core.Space
	data, err := json.Marshal(space)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &mutated); err != nil {
		t.Fatal(err)
	}
	in := mutated.Intent("Drugs That Treat Condition")
	if in == nil {
		t.Fatal("fixture space lost its treatment intent")
	}
	in.Examples = append(in.Examples, "what medication would help with psoriasis please")
	b2, err := bundle.Compile(&mutated, bundle.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if b1.Version() == b2.Version() {
		t.Fatal("mutated space compiled to the same version")
	}
	return b1, b2
}

// TestInstallBundleUnderConcurrentTraffic is the hot-swap acceptance
// check, meant to run under -race: sessions chat continuously while the
// agent is repeatedly swapped between two bundle generations. Every turn
// must complete normally (in-flight turns finish on the runtime they
// started on) and the live version must track the last installed bundle.
func TestInstallBundleUnderConcurrentTraffic(t *testing.T) {
	b1, b2 := bundlePair(t)
	a, err := agent.NewFromBundle(b1, base, agent.Options{})
	if err != nil {
		t.Fatal(err)
	}

	const (
		chatters     = 8
		turnsPerChat = 30
		reloads      = 20
	)
	var wg sync.WaitGroup
	errs := make(chan error, chatters*turnsPerChat)
	for c := 0; c < chatters; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			s := agent.NewSession()
			for i := 0; i < turnsPerChat; i++ {
				var reply string
				switch i % 3 {
				case 0:
					reply = a.Respond(s, "show me drugs that treat psoriasis")
				case 1:
					reply = a.Respond(s, "adult")
				default:
					reply = a.Respond(s, "precautions for Aspirin")
				}
				if reply == "" {
					errs <- fmt.Errorf("chatter %d turn %d: empty reply", c, i)
				}
			}
		}(c)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < reloads; i++ {
			next := b2
			if i%2 == 1 {
				next = b1
			}
			if err := a.InstallBundle(next); err != nil {
				errs <- fmt.Errorf("reload %d: %v", i, err)
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	// reloads ran 0..19, last i=19 odd -> b1
	if a.Version() != b1.Version() {
		t.Fatalf("final version %q, want %q", a.Version(), b1.Version())
	}
	// sessions survived: an elicitation answered across swaps still works
	s := agent.NewSession()
	if r := a.Respond(s, "show me drugs that treat psoriasis"); r != "Adult or pediatric?" {
		t.Fatalf("elicitation = %q", r)
	}
	a.InstallBundle(b2)
	if r := a.Respond(s, "adult"); !strings.Contains(r, "Acitretin") {
		t.Fatalf("session lost across swap: %q", r)
	}
}

// TestRespondScratchPoolUnderReload aims -race at the fused-NLU scratch
// pool specifically: many goroutines classify through pooled scratch
// buffers while the classifier they score against is swapped underneath
// by InstallBundle. The pool is shared across bundle generations (the
// scratch holds no model state), so traffic must neither race nor
// observe a torn model, and the pool counters must show the traffic
// actually went through the fused path.
func TestRespondScratchPoolUnderReload(t *testing.T) {
	b1, b2 := bundlePair(t)
	a, err := agent.NewFromBundle(b1, base, agent.Options{})
	if err != nil {
		t.Fatal(err)
	}
	gets0, _ := nlu.ScratchStats()

	utterances := []string{
		"show me drugs that treat psoriasis",
		"precautions for Aspirin",
		"what is the dosage of ibuprofen",
		"precuations for asprin", // misspelled: exercises fuzzy + fused paths
		"zzz unknown gibberish input",
	}
	const (
		chatters = 16
		turns    = 40
		reloads  = 30
	)
	var wg sync.WaitGroup
	for c := 0; c < chatters; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			s := agent.NewSession()
			for i := 0; i < turns; i++ {
				a.Respond(s, utterances[(c+i)%len(utterances)])
			}
		}(c)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < reloads; i++ {
			next := b2
			if i%2 == 1 {
				next = b1
			}
			if err := a.InstallBundle(next); err != nil {
				t.Errorf("reload %d: %v", i, err)
			}
		}
	}()
	wg.Wait()

	if gets1, _ := nlu.ScratchStats(); gets1 <= gets0 {
		t.Fatalf("scratch pool saw no checkouts (gets %d -> %d); traffic bypassed the fused path", gets0, gets1)
	}
}

func TestInstallBundleRejectsNil(t *testing.T) {
	b1, _ := bundlePair(t)
	a, err := agent.NewFromBundle(b1, base, agent.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.InstallBundle(nil); err == nil {
		t.Fatal("expected error for nil bundle")
	}
	if a.Version() != b1.Version() {
		t.Fatalf("failed install changed version to %q", a.Version())
	}
}

// TestServerReloadEndpoint drives the HTTP reload path: version change,
// method restrictions, the 501 without a reloader, and the new version
// showing up in the /metrics exposition.
func TestServerReloadEndpoint(t *testing.T) {
	b1, b2 := bundlePair(t)
	a, err := agent.NewFromBundle(b1, base, agent.Options{})
	if err != nil {
		t.Fatal(err)
	}
	srv := agent.NewServer(a)
	next := b2
	srv.SetReloader(func() (*bundle.Bundle, error) { return next, nil })
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/admin/reload", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reload status %d", resp.StatusCode)
	}
	var out agent.ReloadResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Version != b2.Version() {
		t.Fatalf("reload reported %q, want %q", out.Version, b2.Version())
	}
	if a.Version() != b2.Version() {
		t.Fatalf("agent serves %q after reload", a.Version())
	}

	// GET is not allowed
	getResp, err := http.Get(ts.URL + "/admin/reload")
	if err != nil {
		t.Fatal(err)
	}
	getResp.Body.Close()
	if getResp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET reload status %d", getResp.StatusCode)
	}

	// reloader failure keeps the current runtime serving
	srv.SetReloader(func() (*bundle.Bundle, error) { return nil, fmt.Errorf("disk gone") })
	failResp, err := http.Post(ts.URL+"/admin/reload", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	failResp.Body.Close()
	if failResp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("failed reload status %d", failResp.StatusCode)
	}
	if a.Version() != b2.Version() {
		t.Fatalf("failed reload changed serving version to %q", a.Version())
	}

	// the exposition must carry the live version and the reload counters
	mResp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(mResp.Body)
	mResp.Body.Close()
	text := string(body)
	live := fmt.Sprintf(`mdx_bundle_info{version=%q} 1`, b2.Version())
	retired := fmt.Sprintf(`mdx_bundle_info{version=%q} 0`, b1.Version())
	for _, want := range []string{live, retired, `mdx_reloads_total{result="success"} 1`, `mdx_reloads_total{result="error"} 1`} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics exposition missing %q", want)
		}
	}
}

func TestServerReloadWithoutReloader(t *testing.T) {
	a := fixture(t)
	ts := httptest.NewServer(agent.NewServer(a).Handler())
	defer ts.Close()
	resp, err := http.Post(ts.URL+"/admin/reload", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotImplemented {
		t.Fatalf("status %d, want 501", resp.StatusCode)
	}
}

// TestOptionsSentinels covers the zero-value fix: zero means default,
// negative means explicitly disabled.
func TestOptionsSentinels(t *testing.T) {
	fixture(t)

	// MaxListed: a tiny positive cap elides, -1 removes the cap entirely.
	capped, err := agent.New(space, base, agent.Options{MaxListed: 1})
	if err != nil {
		t.Fatal(err)
	}
	uncapped, err := agent.New(space, base, agent.Options{MaxListed: -1})
	if err != nil {
		t.Fatal(err)
	}
	ask := func(a *agent.Agent) string {
		s := agent.NewSession()
		a.Respond(s, "show me drugs that treat psoriasis")
		return a.Respond(s, "adult")
	}
	cappedReply, uncappedReply := ask(capped), ask(uncapped)
	if !strings.Contains(cappedReply, "…") {
		t.Fatalf("MaxListed=1 did not elide: %q", cappedReply)
	}
	if strings.Contains(uncappedReply, "…") {
		t.Fatalf("MaxListed=-1 still elided: %q", uncappedReply)
	}
	if len(uncappedReply) <= len(cappedReply) {
		t.Fatalf("uncapped reply (%d bytes) not longer than capped (%d)", len(uncappedReply), len(cappedReply))
	}

	// MinConfidence: -1 disables the threshold, so even gibberish is
	// dispatched as a fresh classification instead of being routed through
	// the low-confidence repair path.
	strict, err := agent.New(space, base, agent.Options{MinConfidence: 0.99})
	if err != nil {
		t.Fatal(err)
	}
	lax, err := agent.New(space, base, agent.Options{MinConfidence: -1})
	if err != nil {
		t.Fatal(err)
	}
	utterance := "show me drugs that treat psoriasis"
	strictReply := strict.Respond(agent.NewSession(), utterance)
	laxReply := lax.Respond(agent.NewSession(), utterance)
	if strictReply == laxReply {
		t.Fatalf("threshold 0.99 and disabled threshold behave identically: %q", strictReply)
	}
	if laxReply != "Adult or pediatric?" {
		t.Fatalf("disabled threshold should classify normally, got %q", laxReply)
	}
}
