package agent

import (
	"container/list"
	"sort"
	"strings"
	"sync"

	"ontoconv/internal/sqlx"
)

// DefaultAnswerCacheSize is the answer-cache capacity selected by
// Options.AnswerCache == 0.
const DefaultAnswerCacheSize = 1024

// answerCache is a bounded LRU of executed query results, keyed by
// (intent, sorted slot bindings). One cache belongs to exactly one
// runtime generation: InstallBundle builds a fresh runtime — and with it
// a fresh, empty cache — so a swap can never serve results computed
// against retired artifacts. Cached *sqlx.Result values are shared and
// must be treated as read-only (formatAnswer never mutates them).
//
// Lock discipline: the mutex guards only map/list bookkeeping. KB
// execution happens strictly outside the lock; two turns racing on the
// same missing key may both execute, which is benign (identical results,
// last write wins).
type answerCache struct {
	mu  sync.Mutex
	max int
	ll  *list.List // front = most recent
	ent map[string]*list.Element
}

type cacheEntry struct {
	key string
	res *sqlx.Result
}

// newAnswerCache returns a cache bounded to max entries, or nil when
// max <= 0 (caching disabled).
func newAnswerCache(max int) *answerCache {
	if max <= 0 {
		return nil
	}
	return &answerCache{max: max, ll: list.New(), ent: make(map[string]*list.Element)}
}

// answerKey builds the lookup key for one intent invocation: the slot
// bindings are sorted so argument-map iteration order never splits
// entries. \x1f separates fields; it cannot occur in recognized entity
// values.
func answerKey(intent string, args map[string]string) string {
	parts := make([]string, 0, len(args))
	for k, v := range args {
		parts = append(parts, k+"="+v)
	}
	sort.Strings(parts)
	return intent + "\x1f" + strings.Join(parts, "\x1f")
}

func (c *answerCache) get(key string) (*sqlx.Result, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.ent[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).res, true
}

func (c *answerCache) put(key string, res *sqlx.Result) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.ent[key]; ok {
		el.Value.(*cacheEntry).res = res
		c.ll.MoveToFront(el)
		return
	}
	c.ent[key] = c.ll.PushFront(&cacheEntry{key: key, res: res})
	for c.ll.Len() > c.max {
		back := c.ll.Back()
		c.ll.Remove(back)
		delete(c.ent, back.Value.(*cacheEntry).key)
	}
}

// len reports the current entry count (for tests).
func (c *answerCache) len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
