package agent_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"ontoconv/internal/agent"
	"ontoconv/internal/bundle"
	"ontoconv/internal/core"
	"ontoconv/internal/kb"
	"ontoconv/internal/obs"
	"ontoconv/internal/retailkb"
	"ontoconv/internal/workspace"
)

// Two-tenant serving fixture: the medkb space from the package fixture as
// tenant "default", the retail domain as tenant "retail", both served from
// compiled bundles through a workspace registry.
var (
	wsOnce       sync.Once
	medBlob      []byte
	retailBlob   []byte
	retailBase   *kb.KB
	retailSpace  *core.Space
	wsSetupE     error
	retailBundle *bundle.Bundle
)

func wsFixture(t *testing.T) {
	t.Helper()
	fixture(t) // ensures base/space (medkb) are built
	wsOnce.Do(func() {
		b, err := bundle.Compile(space, bundle.Options{})
		if err != nil {
			wsSetupE = err
			return
		}
		buf := &bytes.Buffer{}
		if err := b.Write(buf); err != nil {
			wsSetupE = err
			return
		}
		medBlob = buf.Bytes()

		retailBase, _, retailSpace, wsSetupE = retailkb.Bootstrap()
		if wsSetupE != nil {
			return
		}
		rb, err := bundle.Compile(retailSpace, bundle.Options{})
		if err != nil {
			wsSetupE = err
			return
		}
		rbuf := &bytes.Buffer{}
		if err := rb.Write(rbuf); err != nil {
			wsSetupE = err
			return
		}
		retailBlob = rbuf.Bytes()
		retailBundle = rb
	})
	if wsSetupE != nil {
		t.Fatal(wsSetupE)
	}
}

// twoTenantServer builds a workspace-mode server hosting default(medkb)
// and retail, plus the registry for residency assertions.
func twoTenantServer(t *testing.T, cap int) (*agent.Server, *workspace.Registry, *obs.Registry) {
	t.Helper()
	wsFixture(t)
	oreg := obs.NewRegistry()
	reg, err := workspace.New(oreg, cap,
		workspace.Source{
			Name: "default",
			Open: func() (*bundle.Bundle, error) { return bundle.Open(bytes.NewReader(medBlob)) },
			KB:   func(*core.Space) (*kb.KB, error) { return base, nil },
		},
		workspace.Source{
			Name: "retail",
			Open: func() (*bundle.Bundle, error) { return bundle.Open(bytes.NewReader(retailBlob)) },
			KB:   func(*core.Space) (*kb.KB, error) { return retailBase, nil },
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	return agent.NewWorkspaceServer(reg, oreg), reg, oreg
}

func postChat(t *testing.T, url, session, message string, hdr map[string]string) (int, string) {
	t.Helper()
	body, _ := json.Marshal(agent.ChatRequest{Session: session, Message: message})
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, string(b)
}

func TestWorkspaceRouting(t *testing.T) {
	srv, _, _ := twoTenantServer(t, 0)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Path prefix addresses the retail tenant.
	code, body := postChat(t, ts.URL+"/w/retail/chat", "r1", "show me the reviews for Aurora Headphones", nil)
	if code != http.StatusOK {
		t.Fatalf("retail chat = %d: %s", code, body)
	}
	var cr agent.ChatResponse
	if err := json.Unmarshal([]byte(body), &cr); err != nil {
		t.Fatal(err)
	}
	if cr.Workspace != "retail" || !cr.Answered || !strings.Contains(cr.Reply, "stars") {
		t.Fatalf("retail chat response = %+v", cr)
	}

	// Header addresses the retail tenant on a bare route.
	code, body = postChat(t, ts.URL+"/chat", "r2", "warranty on the Nimbus Desk Lamp",
		map[string]string{"X-Workspace": "retail"})
	if code != http.StatusOK || !strings.Contains(body, `"workspace":"retail"`) {
		t.Fatalf("header-routed chat = %d: %s", code, body)
	}

	// Bare route serves the default (medical) tenant.
	code, body = postChat(t, ts.URL+"/chat", "m1", "precautions for Aspirin", nil)
	if code != http.StatusOK || !strings.Contains(body, "Aspirin") {
		t.Fatalf("default chat = %d: %s", code, body)
	}
	if strings.Contains(body, `"workspace"`) {
		t.Fatalf("default-tenant response must not carry a workspace field: %s", body)
	}

	// Unknown tenants 404, both by path and by header.
	if code, _ := postChat(t, ts.URL+"/w/nope/chat", "x", "hello", nil); code != http.StatusNotFound {
		t.Fatalf("unknown tenant by path = %d", code)
	}
	if code, _ := postChat(t, ts.URL+"/chat", "x", "hello", map[string]string{"X-Workspace": "nope"}); code != http.StatusNotFound {
		t.Fatalf("unknown tenant by header = %d", code)
	}
	if st := getStatus(t, ts.URL+"/w/nope/readyz"); st != http.StatusNotFound {
		t.Fatalf("unknown tenant readyz = %d", st)
	}

	// Per-tenant readiness reports the tenant's bundle version.
	resp, err := http.Get(ts.URL + "/w/retail/readyz")
	if err != nil {
		t.Fatal(err)
	}
	var ready agent.ReadyResponse
	if err := json.NewDecoder(resp.Body).Decode(&ready); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if ready.Version != retailBundle.Version() || ready.Workspace != "retail" {
		t.Fatalf("retail readyz = %+v, want version %s", ready, retailBundle.Version())
	}
}

func TestWorkspaceSessionIsolation(t *testing.T) {
	srv, _, _ := twoTenantServer(t, 0)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// The same session ID against two tenants must be two conversations.
	const sid = "shared-id"
	if code, body := postChat(t, ts.URL+"/chat", sid, "precautions for Aspirin", nil); code != 200 {
		t.Fatalf("default chat: %d %s", code, body)
	}
	if code, body := postChat(t, ts.URL+"/w/retail/chat", sid, "show me the reviews for Aurora Headphones", nil); code != 200 {
		t.Fatalf("retail chat: %d %s", code, body)
	}

	ctx := func(url string) map[string]interface{} {
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("context %s = %d", url, resp.StatusCode)
		}
		var m map[string]interface{}
		if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
			t.Fatal(err)
		}
		return m
	}
	med := ctx(ts.URL + "/context?session=" + sid)
	ret := ctx(ts.URL + "/w/retail/context?session=" + sid)
	if med["turns"].(float64) != 1 || ret["turns"].(float64) != 1 {
		t.Fatalf("each tenant should hold exactly one turn for %q: med=%v retail=%v", sid, med, ret)
	}
	if med["intent"] == ret["intent"] {
		t.Fatalf("tenants share intent state: %v", med["intent"])
	}

	// A session only exists in the tenant that created it.
	if code, body := postChat(t, ts.URL+"/w/retail/feedback", "", "", nil); code == 0 {
		t.Fatal(body)
	}
	fb, _ := json.Marshal(agent.FeedbackRequest{Session: "only-default", Thumbs: "up"})
	if code, _ := postChat(t, ts.URL+"/chat", "only-default", "precautions for Aspirin", nil); code != 200 {
		t.Fatal("setup chat failed")
	}
	resp, err := http.Post(ts.URL+"/w/retail/feedback", "application/json", bytes.NewReader(fb))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("feedback for another tenant's session = %d, want 404", resp.StatusCode)
	}
}

func TestWorkspaceMetricsLabels(t *testing.T) {
	srv, _, _ := twoTenantServer(t, 0)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	postChat(t, ts.URL+"/chat", "m1", "precautions for Aspirin", nil)
	postChat(t, ts.URL+"/w/retail/chat", "r1", "show me the reviews for Aurora Headphones", nil)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	out := string(b)
	for _, want := range []string{
		`mdx_turns_total{tenant="default"} 1`,
		`mdx_turns_total{tenant="retail"} 1`,
		`mdx_sessions_opened_total{tenant="retail"} 1`,
		`mdx_turn_seconds_live{tenant="retail",quantile="0.99"}`,
		`mdx_workspace_resident 2`,
		`mdx_workspace_builds_total{workspace="retail"} 1`,
		`mdx_bundle_info{tenant="retail",version="` + retailBundle.Version() + `"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	if t.Failed() {
		t.Logf("exposition:\n%s", out)
	}
}

func TestWorkspacePerTenantReload(t *testing.T) {
	srv, reg, _ := twoTenantServer(t, 0)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/w/retail/admin/reload", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	var rr agent.ReloadResponse
	if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if rr.Version != retailBundle.Version() || rr.Workspace != "retail" {
		t.Fatalf("retail reload = %+v", rr)
	}
	if !reg.Resident("retail") {
		t.Fatal("reload should leave the tenant resident")
	}

	// Bare reload targets the default tenant through the resolver.
	resp, err = http.Post(ts.URL+"/admin/reload", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || strings.Contains(string(body), `"workspace"`) {
		t.Fatalf("default reload = %d %s", resp.StatusCode, body)
	}
}

// TestWorkspaceEvictionUnderChat: with cap=1, alternating tenants keeps
// evicting and re-admitting, and every turn still answers.
func TestWorkspaceEvictionUnderChat(t *testing.T) {
	srv, reg, oreg := twoTenantServer(t, 1)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	for i := 0; i < 3; i++ {
		if code, body := postChat(t, ts.URL+"/chat", "m", "precautions for Aspirin", nil); code != 200 {
			t.Fatalf("round %d default: %d %s", i, code, body)
		}
		if reg.Resident("retail") {
			t.Fatalf("round %d: cap=1 but retail still resident after default turn", i)
		}
		if code, body := postChat(t, ts.URL+"/w/retail/chat", "r", "show me the reviews for Aurora Headphones", nil); code != 200 {
			t.Fatalf("round %d retail: %d %s", i, code, body)
		}
		if reg.Resident("default") {
			t.Fatalf("round %d: cap=1 but default still resident after retail turn", i)
		}
	}
	var sb strings.Builder
	oreg.WritePrometheus(&sb)
	out := sb.String()
	if !strings.Contains(out, "mdx_workspace_resident 1") {
		t.Errorf("resident gauge should read 1 under cap=1")
	}
	// 6 builds happened (3 per tenant); at least 5 evictions.
	var ev int
	if _, err := fmt.Sscanf(lineWith(out, "mdx_workspace_evictions_total"), "mdx_workspace_evictions_total %d", &ev); err != nil {
		t.Fatalf("no evictions counter: %v\n%s", err, out)
	}
	if ev < 5 {
		t.Errorf("evictions = %d, want >= 5", ev)
	}
	// Counters survive eviction: turns accumulated across rebuilds.
	if !strings.Contains(out, `mdx_turns_total{tenant="retail"} 3`) {
		t.Errorf("retail turn counter should survive eviction/rebuild\n%s", lineWith(out, "mdx_turns_total"))
	}
}

func lineWith(s, prefix string) string {
	for _, ln := range strings.Split(s, "\n") {
		if strings.HasPrefix(ln, prefix) && !strings.HasPrefix(ln, "# ") {
			return ln
		}
	}
	return ""
}

// TestBackCompatGolden pins the bare-route wire shapes: a workspace-mode
// server must answer /chat, /feedback, and /context byte-identically to
// the single-agent server for the default tenant, and /trace must keep its
// shape. This is what keeps pre-workspace clients and recorded loadgen
// replays valid.
func TestBackCompatGolden(t *testing.T) {
	wsFixture(t)
	single := httptest.NewServer(agent.NewServer(fixture(t)).Handler())
	defer single.Close()
	wsSrv, _, _ := twoTenantServer(t, 0)
	multi := httptest.NewServer(wsSrv.Handler())
	defer multi.Close()

	chatBody := `{"session":"golden","message":"precautions for Aspirin"}`
	fbBody := `{"session":"golden","thumbs":"up"}`

	fetch := func(base, method, path, body string) string {
		var resp *http.Response
		var err error
		if method == http.MethodPost {
			resp, err = http.Post(base+path, "application/json", strings.NewReader(body))
		} else {
			resp, err = http.Get(base + path)
		}
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s %s = %d", method, path, resp.StatusCode)
		}
		b, _ := io.ReadAll(resp.Body)
		return string(b)
	}

	for _, c := range []struct{ method, path, body string }{
		{http.MethodPost, "/chat", chatBody},
		{http.MethodPost, "/feedback", fbBody},
		{http.MethodGet, "/context?session=golden", ""},
	} {
		got := fetch(multi.URL, c.method, c.path, c.body)
		want := fetch(single.URL, c.method, c.path, c.body)
		if got != want {
			t.Errorf("%s %s diverged from single-agent serving:\n single: %s\n  multi: %s",
				c.method, c.path, want, got)
		}
	}

	// /trace carries timings, so pin structure rather than bytes.
	var tr agent.TraceResponse
	if err := json.Unmarshal([]byte(fetch(multi.URL, http.MethodGet, "/trace?session=golden", "")), &tr); err != nil {
		t.Fatal(err)
	}
	if tr.Session != "golden" || tr.Turns != 1 || len(tr.Traces) != 1 {
		t.Fatalf("trace shape = %+v", tr)
	}
}
