package agent

import (
	"ontoconv/internal/dialogue"
)

// Turn records one exchange plus optional user feedback (the thumbs
// up/down buttons of §7.2).
type Turn struct {
	User  string
	Agent string
	// Intent the agent routed to ("" for fallback).
	Intent string
	// Answered marks turns where a KB query was executed.
	Answered bool
	// Feedback: 0 none, +1 thumbs up, -1 thumbs down.
	Feedback int
}

// Session is one user conversation: persistent context plus transcript.
type Session struct {
	Ctx   *dialogue.Context
	Turns []Turn
}

// NewSession returns a fresh session.
func NewSession() *Session {
	return &Session{Ctx: dialogue.NewContext()}
}

// Feedback records thumbs up/down on the most recent turn.
func (s *Session) Feedback(up bool) {
	if len(s.Turns) == 0 {
		return
	}
	if up {
		s.Turns[len(s.Turns)-1].Feedback = 1
	} else {
		s.Turns[len(s.Turns)-1].Feedback = -1
	}
}

// LastTurn returns the most recent turn, or nil.
func (s *Session) LastTurn() *Turn {
	if len(s.Turns) == 0 {
		return nil
	}
	return &s.Turns[len(s.Turns)-1]
}

// Closed reports whether the conversation has been closed.
func (s *Session) Closed() bool { return s.Ctx.Closed }
