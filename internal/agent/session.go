package agent

import (
	"sync"
	"sync/atomic"
	"time"

	"ontoconv/internal/dialogue"
	"ontoconv/internal/obs"
)

// Turn records one exchange plus optional user feedback (the thumbs
// up/down buttons of §7.2).
type Turn struct {
	User  string
	Agent string
	// Intent the agent routed to ("" for fallback).
	Intent string
	// Answered marks turns where a KB query was executed.
	Answered bool
	// Feedback: 0 none, +1 thumbs up, -1 thumbs down.
	Feedback int
	// Trace holds the per-stage execution trace of this turn.
	Trace *obs.Trace
}

// Session is one user conversation: persistent context plus transcript.
// Turns within a session are serialized by mu; distinct sessions proceed
// concurrently (the agent is read-only at serving time).
type Session struct {
	Ctx   *dialogue.Context
	Turns []Turn

	// mu serializes turns and transcript access for this session only.
	mu sync.Mutex
	// lastActive is the unix-nano timestamp of the last turn, for idle
	// eviction; atomic so the sweeper can read it without taking mu.
	lastActive atomic.Int64
}

// NewSession returns a fresh session.
func NewSession() *Session {
	s := &Session{Ctx: dialogue.NewContext()}
	s.Touch()
	return s
}

// Touch marks the session active now.
func (s *Session) Touch() { s.lastActive.Store(time.Now().UnixNano()) }

// LastActive returns the time of the session's last activity.
func (s *Session) LastActive() time.Time {
	return time.Unix(0, s.lastActive.Load())
}

// Feedback records thumbs up/down on the most recent turn.
func (s *Session) Feedback(up bool) {
	if len(s.Turns) == 0 {
		return
	}
	if up {
		s.Turns[len(s.Turns)-1].Feedback = 1
	} else {
		s.Turns[len(s.Turns)-1].Feedback = -1
	}
}

// LastTurn returns the most recent turn, or nil.
func (s *Session) LastTurn() *Turn {
	if len(s.Turns) == 0 {
		return nil
	}
	return &s.Turns[len(s.Turns)-1]
}

// Closed reports whether the conversation has been closed.
func (s *Session) Closed() bool { return s.Ctx.Closed }
