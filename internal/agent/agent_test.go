package agent_test

import (
	"strings"
	"sync"
	"testing"

	"ontoconv/internal/agent"
	"ontoconv/internal/core"
	"ontoconv/internal/kb"
	"ontoconv/internal/medkb"
	"ontoconv/internal/nlu"
)

var (
	once   sync.Once
	ag     *agent.Agent
	base   *kb.KB
	space  *core.Space
	setupE error
)

func fixture(t *testing.T) *agent.Agent {
	t.Helper()
	once.Do(func() {
		var err error
		base, _, space, err = medkb.Bootstrap()
		if err != nil {
			setupE = err
			return
		}
		ag, setupE = agent.New(space, base, agent.Options{})
	})
	if setupE != nil {
		t.Fatal(setupE)
	}
	return ag
}

// TestSampleConversation replays the §6.3 "MDX Sample conversation
// Interaction" transcript and checks each system behaviour it exhibits.
func TestSampleConversation(t *testing.T) {
	a := fixture(t)
	s := agent.NewSession()

	// 01 A: greeting
	if !strings.Contains(a.Greeting(), "Micromedex") {
		t.Fatalf("greeting = %q", a.Greeting())
	}

	// 02-03: treatment request elicits the age group
	r := a.Respond(s, "show me drugs that treat psoriasis")
	if r != "Adult or pediatric?" {
		t.Fatalf("expected age-group elicitation, got %q", r)
	}

	// 04-05: "adult" completes the request (persistent context)
	r = a.Respond(s, "adult")
	if !strings.Contains(r, "Acitretin") || !strings.Contains(r, "Adalimumab") {
		t.Fatalf("adult psoriasis answer = %q", r)
	}
	if !strings.Contains(r, "Effective") {
		t.Fatalf("answer not grouped by efficacy: %q", r)
	}

	// 06-07: incremental modification
	r = a.Respond(s, "I mean pediatric?")
	if !strings.Contains(r, "Fluocinonide") || !strings.Contains(r, "Salicylic Acid") {
		t.Fatalf("pediatric psoriasis answer = %q", r)
	}
	if strings.Contains(r, "Acitretin") {
		t.Fatalf("adult drugs leaked: %q", r)
	}

	// 08-09: definition request repair (B2.5.0)
	r = a.Respond(s, "what do you mean by effective?")
	if !strings.HasPrefix(r, "Oh. Effective is the capacity for beneficial change") {
		t.Fatalf("definition repair = %q", r)
	}

	// 10-11: appreciation -> check for next topic
	r = a.Respond(s, "thanks")
	if r != "You're welcome! Anything else?" {
		t.Fatalf("appreciation = %q", r)
	}

	// 12-13: dosage request reuses psoriasis + pediatric from context
	r = a.Respond(s, "dosage for Tazarotene")
	if !strings.Contains(r, "0.05% gel") {
		t.Fatalf("Tazarotene pediatric dosing = %q", r)
	}

	// 14-15: incremental drug swap
	r = a.Respond(s, "how about for Fluocinonide?")
	if !strings.Contains(r, "0.1% cream") {
		t.Fatalf("Fluocinonide dosing = %q", r)
	}

	// 16-20: close
	a.Respond(s, "thanks")
	r = a.Respond(s, "no")
	if !strings.Contains(r, "Goodbye") || !s.Closed() {
		t.Fatalf("close = %q closed=%v", r, s.Closed())
	}
}

// TestKeywordEntrySession replays the "MDX User 480" transcript (§6.3).
func TestKeywordEntrySession(t *testing.T) {
	a := fixture(t)
	s := agent.NewSession()

	// 01-02: bare brand name -> intent elicitation via proposal
	r := a.Respond(s, "cogentin")
	if !strings.HasPrefix(r, "Would you like to see the precautions of benztropine mesylate?") {
		t.Fatalf("proposal = %q", r)
	}

	// 03-04: user asks for side effects instead — the synonym resolves
	// (the lesson the paper's deployment had to learn)
	r = a.Respond(s, "What are the side effects of cogentin")
	if !strings.Contains(r, "adverse effects for Benztropine Mesylate") {
		t.Fatalf("side effects = %q", r)
	}

	// keyword-style "cogentin adverse effects" works too
	s2 := agent.NewSession()
	r = a.Respond(s2, "cogentin adverse effects")
	if !strings.Contains(r, "Benztropine Mesylate") {
		t.Fatalf("keyword query = %q", r)
	}
}

func TestProposalFlowYes(t *testing.T) {
	a := fixture(t)
	s := agent.NewSession()
	a.Respond(s, "cogentin")
	r := a.Respond(s, "yes")
	if !strings.Contains(r, "precautions for Benztropine Mesylate") {
		t.Fatalf("accepted proposal = %q", r)
	}
}

func TestProposalFlowNoAdvancesThenGivesUp(t *testing.T) {
	a := fixture(t)
	s := agent.NewSession()
	a.Respond(s, "cogentin")
	r := a.Respond(s, "no")
	if !strings.HasPrefix(r, "Would you like to see") {
		t.Fatalf("second proposal expected, got %q", r)
	}
	r = a.Respond(s, "no")
	if r != "OK. Please modify your search." {
		t.Fatalf("give-up = %q", r)
	}
}

func TestSlotFillingFromScratch(t *testing.T) {
	a := fixture(t)
	s := agent.NewSession()
	r := a.Respond(s, "give me the dosage")
	if r != "For which drug?" {
		t.Fatalf("first elicitation = %q", r)
	}
	r = a.Respond(s, "Amoxicillin")
	if r != "For which condition?" {
		t.Fatalf("second elicitation = %q", r)
	}
	r = a.Respond(s, "bronchitis")
	if r != "Adult or pediatric?" {
		t.Fatalf("third elicitation = %q", r)
	}
	r = a.Respond(s, "adult")
	if !strings.Contains(r, "Amoxicillin dosage for Bronchitis") {
		t.Fatalf("answer = %q", r)
	}
}

func TestSynonymsResolveInSlots(t *testing.T) {
	a := fixture(t)
	s := agent.NewSession()
	a.Respond(s, "show me drugs that treat psoriasis")
	// "children" is an AgeGroup synonym for pediatric
	r := a.Respond(s, "children")
	if !strings.Contains(r, "pediatric") {
		t.Fatalf("synonym slot answer = %q", r)
	}
}

func TestMisspellingTolerance(t *testing.T) {
	a := fixture(t)
	s := agent.NewSession()
	r := a.Respond(s, "precautions for asprin") // missing 'i'
	if !strings.Contains(r, "Aspirin") {
		t.Fatalf("fuzzy match failed: %q", r)
	}
}

func TestRepeatRepair(t *testing.T) {
	a := fixture(t)
	s := agent.NewSession()
	r := a.Respond(s, "what did you say?")
	if !strings.Contains(r, "haven't said anything") {
		t.Fatalf("repeat before content = %q", r)
	}
	first := a.Respond(s, "precautions for Aspirin")
	r = a.Respond(s, "what did you say?")
	if r != "I said: "+first {
		t.Fatalf("repeat = %q", r)
	}
}

func TestAbortClearsTask(t *testing.T) {
	a := fixture(t)
	s := agent.NewSession()
	a.Respond(s, "give me the dosage")
	r := a.Respond(s, "never mind")
	if r != "OK. Please modify your search." {
		t.Fatalf("abort = %q", r)
	}
	if s.Ctx.Intent != "" {
		t.Fatal("task not cleared")
	}
}

func TestGibberishFallsBack(t *testing.T) {
	a := fixture(t)
	s := agent.NewSession()
	r := a.Respond(s, "apfjhd")
	if !strings.Contains(r, "didn't understand") && !strings.Contains(r, "help") {
		t.Fatalf("gibberish response = %q", r)
	}
}

func TestGreetingIntent(t *testing.T) {
	a := fixture(t)
	s := agent.NewSession()
	r := a.Respond(s, "hello")
	if !strings.Contains(r, "Micromedex") {
		t.Fatalf("greeting intent = %q", r)
	}
}

func TestHelpIntent(t *testing.T) {
	a := fixture(t)
	s := agent.NewSession()
	r := a.Respond(s, "help")
	if !strings.Contains(strings.ToLower(r), "ask") {
		t.Fatalf("help = %q", r)
	}
}

func TestFeedbackRecording(t *testing.T) {
	a := fixture(t)
	s := agent.NewSession()
	a.Respond(s, "precautions for Aspirin")
	s.Feedback(false)
	if s.LastTurn().Feedback != -1 {
		t.Fatal("thumbs down not recorded")
	}
	s.Feedback(true)
	if s.LastTurn().Feedback != 1 {
		t.Fatal("thumbs up not recorded")
	}
	// feedback on an empty session is a no-op
	empty := agent.NewSession()
	empty.Feedback(true)
	if empty.LastTurn() != nil {
		t.Fatal("empty session grew a turn")
	}
}

func TestTurnMetadata(t *testing.T) {
	a := fixture(t)
	s := agent.NewSession()
	a.Respond(s, "precautions for Aspirin")
	turn := s.LastTurn()
	if !turn.Answered || turn.Intent != "Precautions of Drug" {
		t.Fatalf("turn = %+v", turn)
	}
	a.Respond(s, "show me drugs that treat psoriasis")
	turn = s.LastTurn()
	if turn.Answered || turn.Intent != "Drugs That Treat Condition" {
		t.Fatalf("elicitation turn = %+v", turn)
	}
}

func TestBrandNameResolvesToCanonicalDrug(t *testing.T) {
	a := fixture(t)
	s := agent.NewSession()
	r := a.Respond(s, "precautions for Tylenol")
	if !strings.Contains(r, "Acetaminophen") {
		t.Fatalf("brand resolution = %q", r)
	}
}

func TestNoResultsMessage(t *testing.T) {
	a := fixture(t)
	s := agent.NewSession()
	// Mystery pair unlikely to exist: dosage for a drug/indication never
	// paired. Use direct intent with an unseen combination.
	a.Respond(s, "dosage for Warfarin for psoriasis")
	r := a.Respond(s, "pediatric")
	if !strings.Contains(r, "couldn't find") && !strings.Contains(r, "0.") {
		// Warfarin doesn't treat psoriasis, so no dosage rows exist.
		t.Fatalf("no-result handling = %q", r)
	}
}

func TestKeywordBaseline(t *testing.T) {
	a := fixture(t)
	kw := agent.NewKeywordAgent(a.Space(), base)

	// concept + instance answers
	r, intent := kw.Respond("precautions Aspirin")
	if intent != "Precautions of Drug" || r == "Please refine your search." {
		t.Fatalf("baseline = %q %q", r, intent)
	}
	// entity-only fails (no DRUG_GENERAL flow in the baseline)
	r, intent = kw.Respond("Aspirin")
	if intent != "" || r != "Please refine your search." {
		t.Fatalf("baseline entity-only = %q %q", r, intent)
	}
	// no context: follow-ups fail
	r, intent = kw.Respond("what about Ibuprofen?")
	if intent != "" {
		t.Fatalf("baseline context = %q %q", r, intent)
	}
}

func TestClassifierQualityOnSpace(t *testing.T) {
	a := fixture(t)
	var examples []nlu.Example
	for _, te := range a.Space().AllExamples() {
		examples = append(examples, nlu.Example{Text: te.Text, Intent: te.Intent})
	}
	train, test := nlu.TrainTestSplit(examples, 5)
	clf := nlu.NewLogisticRegression()
	if err := clf.Train(train); err != nil {
		t.Fatal(err)
	}
	ev := nlu.Evaluate(clf, test)
	// The paper reports average F1 0.85; the bootstrap-generated space
	// must train a clearly-better-than-chance classifier.
	if ev.MacroF1 < 0.75 {
		t.Fatalf("macro F1 = %.3f, too low\n%s", ev.MacroF1, ev.String())
	}
}

func TestAgentAccessors(t *testing.T) {
	a := fixture(t)
	if a.Classifier() == nil || a.Recognizer() == nil || a.Tree() == nil || a.LogicTable() == nil {
		t.Fatal("accessors returned nil")
	}
	if a.Space() != space {
		t.Fatal("space accessor mismatch")
	}
}

func TestNewAgentErrors(t *testing.T) {
	_, err := agent.New(&core.Space{}, kb.New(), agent.Options{})
	if err == nil {
		t.Fatal("empty space must fail training")
	}
}

// TestConversationManagementSweep drives every generic intent through the
// agent.
func TestConversationManagementSweep(t *testing.T) {
	a := fixture(t)
	cases := []struct {
		utterance string
		contains  string
	}{
		{"hello there", "Micromedex"},
		{"what can you do", "drug reference"},
		{"how are you today", "ready to help"},
		{"okay got it", "Anything else?"},
		{"that's wrong", "modify your search"},
		{"can you rephrase that", ""},
		{"goodbye", "Goodbye"},
	}
	for _, c := range cases {
		s := agent.NewSession()
		r := a.Respond(s, c.utterance)
		if c.contains != "" && !strings.Contains(r, c.contains) {
			t.Errorf("%q -> %q, want substring %q", c.utterance, r, c.contains)
		}
	}
}

// TestUnionLookupRisks exercises the union-augmented intent (Figure 4):
// asking for risks, contraindications or black box warnings all route to
// the single Risks intent, answered from the union parent table.
func TestUnionLookupRisks(t *testing.T) {
	a := fixture(t)
	for _, u := range []string{
		"show me the risks for Warfarin",
		"contraindications for Warfarin",
		"black box warnings for Warfarin",
	} {
		s := agent.NewSession()
		r := a.Respond(s, u)
		turn := s.LastTurn()
		if turn.Intent != "Risks of Drug" {
			t.Errorf("%q routed to %q", u, turn.Intent)
		}
		if !turn.Answered || !strings.Contains(r, "Warfarin") {
			t.Errorf("%q -> %q", u, r)
		}
	}
}

// TestInheritanceLookupInteractions exercises the inheritance-augmented
// intent: food- and lab-interaction phrasings route to the parent
// drug-interaction intent.
func TestInheritanceLookupInteractions(t *testing.T) {
	a := fixture(t)
	for _, u := range []string{
		"drug interactions for Warfarin",
		"food interactions for Warfarin",
		"drug-lab interactions for Warfarin",
	} {
		s := agent.NewSession()
		a.Respond(s, u)
		turn := s.LastTurn()
		if turn.Intent != "Drug-Drug Interactions" {
			t.Errorf("%q routed to %q", u, turn.Intent)
		}
	}
}

// TestContextCarriesAcrossTopics follows the paper's §6.3 flow where the
// dosage request after a treatment request inherits condition + age group.
func TestContextCarriesAcrossTopics(t *testing.T) {
	a := fixture(t)
	s := agent.NewSession()
	a.Respond(s, "show me drugs that treat fever")
	a.Respond(s, "adult")
	// new topic shares the condition and age group from context
	r := a.Respond(s, "dosage for Ibuprofen")
	if !strings.Contains(r, "Ibuprofen dosage for Fever for adult") {
		t.Fatalf("context inheritance failed: %q", r)
	}
}
