package agent_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"ontoconv/internal/agent"
	"ontoconv/internal/obs"
)

func TestServerReadyz(t *testing.T) {
	_, ts, _ := obsFixture(t)
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/readyz status %d", resp.StatusCode)
	}
	var out agent.ReadyResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Status != "ready" || out.Version == "" {
		t.Fatalf("readyz = %+v", out)
	}
}

func TestChatAnsweredField(t *testing.T) {
	_, ts, _ := obsFixture(t)
	// An elicitation turn does not execute a KB query…
	if r := chat(t, ts, "ans", "show me drugs that treat psoriasis"); r.Answered {
		t.Fatalf("elicitation marked answered: %+v", r)
	}
	// …but the slot answer completes the request.
	if r := chat(t, ts, "ans", "adult"); !r.Answered {
		t.Fatalf("completed request not marked answered: %+v", r)
	}
}

// TestServerTraceSlowAndRequestID drives turns through the full serving
// stack — AccessLog in front of the handler, exactly like mdxserver —
// and checks the correlation story: the request ID is echoed on the
// response, written to the access log, and attached to the turn's trace
// so the /trace/slow entry joins the access-log line.
func TestServerTraceSlowAndRequestID(t *testing.T) {
	_, _, _ = obsFixture(t) // ensure bootstrap ran
	m := agent.NewMetrics()
	a, err := agent.New(space, base, agent.Options{Metrics: m})
	if err != nil {
		t.Fatal(err)
	}
	var logBuf bytes.Buffer
	ts := httptest.NewServer(obs.AccessLog(&logBuf, agent.NewServer(a).Handler()))
	defer ts.Close()

	// A client-supplied ID is propagated, not replaced.
	req, _ := http.NewRequest("POST", ts.URL+"/chat",
		strings.NewReader(`{"session":"rid","message":"precautions for Aspirin"}`))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Request-ID", "caller-supplied-42")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-ID"); got != "caller-supplied-42" {
		t.Fatalf("echoed request id %q", got)
	}

	// A bare request gets a generated ID.
	resp2 := postJSON(t, ts.URL+"/chat", agent.ChatRequest{Session: "rid", Message: "what is the dosage of Metformin"})
	resp2.Body.Close()
	genID := resp2.Header.Get("X-Request-ID")
	if genID == "" || genID == "caller-supplied-42" {
		t.Fatalf("generated request id %q", genID)
	}

	// Both IDs are in the access log.
	logText := logBuf.String()
	for _, id := range []string{"caller-supplied-42", genID} {
		if !strings.Contains(logText, fmt.Sprintf("%q:%q", "request_id", id)) {
			t.Fatalf("access log missing request_id %q:\n%s", id, logText)
		}
	}

	// /trace/slow carries both turns, worst first, each with per-stage
	// spans and the request_id + session annotations.
	slowResp, err := http.Get(ts.URL + "/trace/slow")
	if err != nil {
		t.Fatal(err)
	}
	defer slowResp.Body.Close()
	var slow agent.SlowTracesResponse
	if err := json.NewDecoder(slowResp.Body).Decode(&slow); err != nil {
		t.Fatal(err)
	}
	if slow.K != obs.DefaultSlowK || slow.Version != a.Version() {
		t.Fatalf("slow header = %+v", slow)
	}
	if len(slow.Traces) != 2 {
		t.Fatalf("slow traces = %d, want 2", len(slow.Traces))
	}
	seen := map[string]bool{}
	for i, tr := range slow.Traces {
		if i > 0 && tr.Duration > slow.Traces[i-1].Duration {
			t.Fatalf("slow traces not sorted worst-first: %v then %v",
				slow.Traces[i-1].Duration, tr.Duration)
		}
		if tr.Generation != a.Version() {
			t.Fatalf("trace %d from generation %q, live is %q", i, tr.Generation, a.Version())
		}
		if len(tr.Trace.Spans) == 0 {
			t.Fatalf("trace %d has no per-stage spans", i)
		}
		attrs := map[string]string{}
		for _, at := range tr.Trace.Attrs {
			attrs[at.Key] = at.Value
		}
		if attrs["session"] != "rid" {
			t.Fatalf("trace %d attrs = %v, missing session", i, attrs)
		}
		seen[attrs["request_id"]] = true
	}
	for _, id := range []string{"caller-supplied-42", genID} {
		if !seen[id] {
			t.Fatalf("no slow trace annotated with request_id %q (saw %v)", id, seen)
		}
	}
}

// TestServerInflightGauge checks the gauge is exposed and settles back
// to zero once traffic drains (/metrics itself is not instrumented, so
// the scrape does not count itself).
func TestServerInflightGauge(t *testing.T) {
	_, ts, m := obsFixture(t)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			chat(t, ts, fmt.Sprintf("in%d", i), "precautions for Aspirin")
		}(i)
	}
	wg.Wait()
	if got := m.HTTPInflight.Value(); got != 0 {
		t.Fatalf("inflight after drain = %d", got)
	}
	out := scrape(t, ts)
	if !strings.Contains(out, "mdx_http_inflight 0") {
		t.Fatalf("exposition missing mdx_http_inflight:\n%s", out)
	}
	if !strings.Contains(out, `mdx_turn_seconds_live{quantile="0.99"}`) {
		t.Fatalf("exposition missing live turn quantiles:\n%s", out)
	}
}

// TestSlowTracesUnderReload is the reservoir's hot-swap acceptance
// check, meant to run under -race: chatters feed the slowest-K reservoir
// continuously while the agent is swapped between two bundle
// generations. At every point the snapshot may only hold traces from the
// live generation — a turn pinned to a retired runtime must never leave
// its trace behind — and the final contents are the slowest turns of the
// last installed generation, worst first, spans intact.
func TestSlowTracesUnderReload(t *testing.T) {
	b1, b2 := bundlePair(t)
	m := agent.NewMetrics()
	a, err := agent.NewFromBundle(b1, base, agent.Options{Metrics: m})
	if err != nil {
		t.Fatal(err)
	}

	const (
		chatters     = 8
		turnsPerChat = 40
		reloads      = 20
	)
	var wg sync.WaitGroup
	for c := 0; c < chatters; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			s := agent.NewSession()
			for i := 0; i < turnsPerChat; i++ {
				switch i % 3 {
				case 0:
					a.Respond(s, "show me drugs that treat psoriasis")
				case 1:
					a.Respond(s, "adult")
				default:
					a.Respond(s, "precautions for Aspirin")
				}
				if i%10 == 0 {
					// Concurrent readers: the snapshot must never show a
					// generation other than the one live at snapshot time…
					// except entries admitted by in-flight turns that pinned
					// the previous generation before the swap landed. Those
					// are purged on the next SetGeneration, so here we only
					// assert structural sanity: bounded and sorted.
					snap := m.Slow.Snapshot()
					if len(snap) > m.Slow.K() {
						t.Errorf("snapshot holds %d > K=%d entries", len(snap), m.Slow.K())
					}
					for j := 1; j < len(snap); j++ {
						if snap[j].Duration > snap[j-1].Duration {
							t.Errorf("snapshot not sorted at %d", j)
						}
					}
				}
			}
		}(c)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < reloads; i++ {
			next := b2
			if i%2 == 1 {
				next = b1
			}
			if err := a.InstallBundle(next); err != nil {
				t.Errorf("reload %d: %v", i, err)
			}
		}
	}()
	wg.Wait()

	// All traffic has drained. One more swap purges anything a straggler
	// turn from the prior generation offered after the last install.
	if err := a.InstallBundle(b2); err != nil {
		t.Fatal(err)
	}
	// Feed the final generation so the snapshot is non-empty.
	s := agent.NewSession()
	for i := 0; i < obs.DefaultSlowK+4; i++ {
		a.Respond(s, "precautions for Aspirin")
	}
	snap := m.Slow.Snapshot()
	if len(snap) == 0 || len(snap) > m.Slow.K() {
		t.Fatalf("final snapshot size %d (K=%d)", len(snap), m.Slow.K())
	}
	for i, tr := range snap {
		if tr.Generation != b2.Version() {
			t.Fatalf("entry %d retained from dropped generation %q (live %q)",
				i, tr.Generation, b2.Version())
		}
		if i > 0 && tr.Duration > snap[i-1].Duration {
			t.Fatalf("final snapshot not sorted at %d", i)
		}
		if len(tr.Trace.Spans) == 0 {
			t.Fatalf("entry %d has no spans", i)
		}
	}
}
