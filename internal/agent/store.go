package agent

import (
	"sync"
	"time"
)

// DefaultSessionShards is the session store's shard count. Power of two so
// the shard index is a mask of the key hash; 64 keeps per-shard maps small
// at 10k+ live sessions while staying far above any realistic core count,
// so two concurrent turns almost never contend on the same shard lock.
const DefaultSessionShards = 64

// sessionShard is one stripe of the session store: a mutex and the slice
// of the key space that hashes to it. Padded to a cache line so adjacent
// shards' locks never false-share.
type sessionShard struct {
	mu sync.Mutex
	m  map[sessionKey]*Session
	_  [40]byte
}

// sessionStore is a striped session map: lookups lock only the shard the
// key hashes to (FNV-1a over workspace and session ID), so sessions in
// different shards proceed with zero lock contention — the global session
// mutex this replaces serialized every turn's session fetch.
type sessionStore struct {
	mask   uint64
	shards []sessionShard
}

// newSessionStore builds a store with the given shard count rounded up to
// a power of two (minimum 1).
func newSessionStore(shards int) *sessionStore {
	n := 1
	for n < shards {
		n <<= 1
	}
	st := &sessionStore{mask: uint64(n - 1), shards: make([]sessionShard, n)}
	for i := range st.shards {
		st.shards[i].m = make(map[sessionKey]*Session)
	}
	return st
}

// fnv1a hashes (workspace, session) with a 0x00 separator so the pair
// ("ab","c") never collides with ("a","bc").
func fnv1a(ws, id string) uint64 {
	const offset64 = 14695981039346656037
	const prime64 = 1099511628211
	h := uint64(offset64)
	for i := 0; i < len(ws); i++ {
		h ^= uint64(ws[i])
		h *= prime64
	}
	h *= prime64 // the separator's h ^= 0 is a no-op; the multiply is not
	for i := 0; i < len(id); i++ {
		h ^= uint64(id[i])
		h *= prime64
	}
	return h
}

// shard returns the stripe the key lives in.
func (st *sessionStore) shard(key sessionKey) *sessionShard {
	return &st.shards[fnv1a(key.ws, key.id)&st.mask]
}

// shardCount returns the number of stripes.
func (st *sessionStore) shardCount() int { return len(st.shards) }

// get returns the session without creating it.
func (st *sessionStore) get(key sessionKey) (*Session, bool) {
	sh := st.shard(key)
	sh.mu.Lock()
	sess, ok := sh.m[key]
	sh.mu.Unlock()
	return sess, ok
}

// getOrCreate returns the session, creating it if absent; created reports
// whether this call inserted it.
func (st *sessionStore) getOrCreate(key sessionKey) (sess *Session, created bool) {
	sh := st.shard(key)
	sh.mu.Lock()
	sess, ok := sh.m[key]
	if !ok {
		sess = NewSession()
		sh.m[key] = sess
		created = true
	}
	sh.mu.Unlock()
	return sess, created
}

// put installs a session under the key (the import path), returning
// whether an existing one was replaced.
func (st *sessionStore) put(key sessionKey, sess *Session) (replaced bool) {
	sh := st.shard(key)
	sh.mu.Lock()
	_, replaced = sh.m[key]
	sh.m[key] = sess
	sh.mu.Unlock()
	return replaced
}

// remove deletes the key, reporting whether it was present.
func (st *sessionStore) remove(key sessionKey) bool {
	sh := st.shard(key)
	sh.mu.Lock()
	_, ok := sh.m[key]
	if ok {
		delete(sh.m, key)
	}
	sh.mu.Unlock()
	return ok
}

// len counts live sessions across all shards.
func (st *sessionStore) len() int {
	n := 0
	for i := range st.shards {
		sh := &st.shards[i]
		sh.mu.Lock()
		n += len(sh.m)
		sh.mu.Unlock()
	}
	return n
}

// sweepShard evicts sessions in shard i idle past the TTL and returns
// their keys (for per-workspace bookkeeping). Only shard i's lock is
// taken: the background sweeper walks one shard per tick, so a sweep pass
// never stalls lookups in the other shards.
func (st *sessionStore) sweepShard(i int, now time.Time, ttl time.Duration) []sessionKey {
	if ttl <= 0 {
		return nil
	}
	sh := &st.shards[i&int(st.mask)]
	var evicted []sessionKey
	sh.mu.Lock()
	for key, sess := range sh.m {
		if now.Sub(sess.LastActive()) > ttl {
			delete(sh.m, key)
			evicted = append(evicted, key)
		}
	}
	sh.mu.Unlock()
	return evicted
}

// sweepAll evicts idle sessions in every shard (one shard lock at a time).
func (st *sessionStore) sweepAll(now time.Time, ttl time.Duration) []sessionKey {
	var evicted []sessionKey
	for i := range st.shards {
		evicted = append(evicted, st.sweepShard(i, now, ttl)...)
	}
	return evicted
}
