package agent_test

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"ontoconv/internal/agent"
)

func serverFixture(t *testing.T) *httptest.Server {
	t.Helper()
	a := fixture(t)
	ts := httptest.NewServer(agent.NewServer(a).Handler())
	t.Cleanup(ts.Close)
	return ts
}

func postJSON(t *testing.T, url string, body interface{}) *http.Response {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func chat(t *testing.T, ts *httptest.Server, session, message string) agent.ChatResponse {
	t.Helper()
	resp := postJSON(t, ts.URL+"/chat", agent.ChatRequest{Session: session, Message: message})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("chat status %d", resp.StatusCode)
	}
	var out agent.ChatResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestServerMultiTurnSession(t *testing.T) {
	ts := serverFixture(t)
	r := chat(t, ts, "s1", "show me drugs that treat psoriasis")
	if r.Reply != "Adult or pediatric?" {
		t.Fatalf("elicitation = %q", r.Reply)
	}
	r = chat(t, ts, "s1", "pediatric")
	if !strings.Contains(r.Reply, "Fluocinonide") {
		t.Fatalf("answer = %q", r.Reply)
	}
	if r.Intent != "Drugs That Treat Condition" {
		t.Fatalf("intent = %q", r.Intent)
	}
}

func TestServerSessionsAreIsolated(t *testing.T) {
	ts := serverFixture(t)
	chat(t, ts, "a", "show me drugs that treat psoriasis")
	// session b must not inherit a's pending request
	r := chat(t, ts, "b", "precautions for Aspirin")
	if !strings.Contains(r.Reply, "Aspirin") {
		t.Fatalf("cross-session leak? %q", r.Reply)
	}
	// a's elicitation still pending
	r = chat(t, ts, "a", "adult")
	if !strings.Contains(r.Reply, "Acitretin") {
		t.Fatalf("session a lost context: %q", r.Reply)
	}
}

func TestServerFeedback(t *testing.T) {
	ts := serverFixture(t)
	chat(t, ts, "fb", "precautions for Aspirin")
	resp := postJSON(t, ts.URL+"/feedback", agent.FeedbackRequest{Session: "fb", Thumbs: "down"})
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("feedback status %d", resp.StatusCode)
	}
	// invalid thumbs value
	resp = postJSON(t, ts.URL+"/feedback", agent.FeedbackRequest{Session: "fb", Thumbs: "sideways"})
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad thumbs status %d", resp.StatusCode)
	}
	// unknown session
	resp = postJSON(t, ts.URL+"/feedback", agent.FeedbackRequest{Session: "ghost", Thumbs: "up"})
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("ghost session status %d", resp.StatusCode)
	}
}

func TestServerContextEndpoint(t *testing.T) {
	ts := serverFixture(t)
	chat(t, ts, "cx", "show me drugs that treat psoriasis")
	resp, err := http.Get(ts.URL + "/context?session=cx")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var payload map[string]interface{}
	if err := json.NewDecoder(resp.Body).Decode(&payload); err != nil {
		t.Fatal(err)
	}
	if payload["intent"] != "Drugs That Treat Condition" {
		t.Fatalf("context = %v", payload)
	}
	resp2, _ := http.Get(ts.URL + "/context?session=none")
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown context status %d", resp2.StatusCode)
	}
}

func TestServerClosedSessionEvicted(t *testing.T) {
	ts := serverFixture(t)
	chat(t, ts, "bye", "precautions for Aspirin")
	r := chat(t, ts, "bye", "goodbye")
	if !r.Closed {
		t.Fatalf("close not reported: %+v", r)
	}
	// the session is gone; context returns 404
	resp, _ := http.Get(ts.URL + "/context?session=bye")
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("closed session still present: %d", resp.StatusCode)
	}
}

func TestServerValidation(t *testing.T) {
	ts := serverFixture(t)
	// GET /chat is rejected
	resp, _ := http.Get(ts.URL + "/chat")
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /chat status %d", resp.StatusCode)
	}
	// missing fields
	resp = postJSON(t, ts.URL+"/chat", agent.ChatRequest{Session: "", Message: ""})
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty chat status %d", resp.StatusCode)
	}
	// malformed body
	resp2, err := http.Post(ts.URL+"/chat", "application/json", strings.NewReader("{bad"))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed chat status %d", resp2.StatusCode)
	}
	// health
	resp3, _ := http.Get(ts.URL + "/healthz")
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp3.StatusCode)
	}
}
