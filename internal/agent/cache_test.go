package agent_test

import (
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"

	"ontoconv/internal/agent"
	"ontoconv/internal/sim"
)

// script is a fixed multi-turn conversation exercising template answers
// (cacheable), elicitation, incremental modification, proposals, and
// conversation management.
var equivalenceScript = []string{
	"show me drugs that treat psoriasis",
	"adult",
	"i mean pediatric",
	"precautions for Aspirin",
	"precautions for Aspirin",
	"what are the side effects of Ibuprofen",
	"how about for Aspirin?",
	"dosage for Tazarotene for psoriasis",
	"adult",
	"what does contraindication mean",
	"thanks, goodbye",
}

// replies drives the script through a fresh session and returns the
// concatenated response log.
func replies(a *agent.Agent) string {
	s := agent.NewSession()
	var b strings.Builder
	for _, u := range equivalenceScript {
		b.WriteString(a.Respond(s, u))
		b.WriteByte('\n')
	}
	return b.String()
}

// TestAnswerCacheHit checks the cache fast path: the second identical
// request is served from cache (hit counter moves, reply unchanged).
func TestAnswerCacheHit(t *testing.T) {
	fixture(t)
	a, err := agent.New(space, base, agent.Options{})
	if err != nil {
		t.Fatal(err)
	}
	m := a.Metrics()
	ask := func() string {
		return a.Respond(agent.NewSession(), "precautions for Aspirin")
	}
	first := ask()
	misses := m.AnswerCache.With("miss").Value()
	if misses == 0 {
		t.Fatal("first request did not record a cache miss")
	}
	second := ask()
	if second != first {
		t.Fatalf("cached reply differs:\nfirst:  %q\nsecond: %q", first, second)
	}
	if hits := m.AnswerCache.With("hit").Value(); hits == 0 {
		t.Fatal("second identical request did not hit the cache")
	}
	if m.AnswerCache.With("miss").Value() != misses {
		t.Fatal("second identical request recorded another miss")
	}
}

// TestAnswerCacheSentinels: AnswerCache 0 selects the default size,
// negative disables caching entirely, and both produce identical replies.
func TestAnswerCacheSentinels(t *testing.T) {
	fixture(t)
	cached, err := agent.New(space, base, agent.Options{})
	if err != nil {
		t.Fatal(err)
	}
	uncached, err := agent.New(space, base, agent.Options{AnswerCache: -1})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := replies(uncached), replies(cached); got != want {
		t.Fatalf("cache-off replies diverge:\ncache-on:  %q\ncache-off: %q", want, got)
	}
	m := uncached.Metrics()
	if n := m.AnswerCache.With("hit").Value() + m.AnswerCache.With("miss").Value(); n != 0 {
		t.Fatalf("disabled cache still counted %d lookups", n)
	}
}

// TestEquivalenceCacheAndPlans is the differential acceptance test: the
// same conversation script must produce byte-identical response logs with
// the cache on or off, and with compiled plans or the interpreter.
func TestEquivalenceCacheAndPlans(t *testing.T) {
	fixture(t)
	variants := map[string]agent.Options{
		"fast":        {},
		"no-cache":    {AnswerCache: -1},
		"interpreter": {AnswerCache: -1, DisablePlans: true},
		"plans-only":  {DisablePlans: true},
	}
	logs := map[string]string{}
	for name, opts := range variants {
		a, err := agent.New(space, base, opts)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		logs[name] = replies(a)
	}
	for name, log := range logs {
		if log != logs["fast"] {
			t.Fatalf("variant %q diverges from the fast path:\nfast: %q\n%s: %q",
				name, logs["fast"], name, log)
		}
	}
}

// TestE3EquivalencePlansVsInterpreter runs the full E3 usage simulation
// against the fast path and the interpreter-only configuration: the two
// interaction logs must be identical entry by entry.
func TestE3EquivalencePlansVsInterpreter(t *testing.T) {
	fixture(t)
	fast, err := agent.New(space, base, agent.Options{})
	if err != nil {
		t.Fatal(err)
	}
	slow, err := agent.New(space, base, agent.Options{AnswerCache: -1, DisablePlans: true})
	if err != nil {
		t.Fatal(err)
	}
	cfg := sim.DefaultConfig()
	cfg.Interactions = 4000
	if testing.Short() {
		cfg.Interactions = 800
	}
	want := sim.Run(slow, cfg)
	got := sim.Run(fast, cfg)
	if len(want.Interactions) != len(got.Interactions) {
		t.Fatalf("log sizes differ: %d vs %d", len(want.Interactions), len(got.Interactions))
	}
	for i := range want.Interactions {
		if !reflect.DeepEqual(want.Interactions[i], got.Interactions[i]) {
			t.Fatalf("interaction %d diverges:\ninterpreter: %+v\nfast path:   %+v",
				i, want.Interactions[i], got.Interactions[i])
		}
	}
}

// TestAnswerCacheUnderConcurrentReload is the cache-invalidation race
// test (run under -race): chatters hammer cacheable questions while the
// agent swaps between two bundle generations whose answers differ. Every
// reply must match one of the two generations' correct answers — a reply
// from a retired generation's cache would match neither pattern rule —
// and after the swaps settle, a fresh request must serve the live
// generation's answer.
func TestAnswerCacheUnderConcurrentReload(t *testing.T) {
	b1, b2 := bundlePair(t)
	a, err := agent.NewFromBundle(b1, base, agent.Options{})
	if err != nil {
		t.Fatal(err)
	}

	const (
		chatters     = 8
		turnsPerChat = 40
		reloads      = 30
	)
	var wg sync.WaitGroup
	errs := make(chan error, chatters*turnsPerChat)
	for c := 0; c < chatters; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			s := agent.NewSession()
			for i := 0; i < turnsPerChat; i++ {
				var reply string
				if i%2 == 0 {
					reply = a.Respond(s, "precautions for Aspirin")
					if !strings.Contains(reply, "Aspirin") {
						errs <- fmt.Errorf("chatter %d turn %d: bad answer %q", c, i, reply)
					}
				} else {
					reply = a.Respond(s, "what are the side effects of Ibuprofen")
					if reply == "" {
						errs <- fmt.Errorf("chatter %d turn %d: empty reply", c, i)
					}
				}
			}
		}(c)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < reloads; i++ {
			next := b2
			if i%2 == 1 {
				next = b1
			}
			if err := a.InstallBundle(next); err != nil {
				errs <- fmt.Errorf("reload %d: %v", i, err)
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// Swaps settled (last install was b1). A stale cache would have been
	// impossible anyway — each runtime generation owns a fresh cache —
	// but assert the live generation answers correctly post-swap.
	if a.Version() != b1.Version() {
		t.Fatalf("final version %q, want %q", a.Version(), b1.Version())
	}
	reply := a.Respond(agent.NewSession(), "precautions for Aspirin")
	if !strings.Contains(reply, "Aspirin") {
		t.Fatalf("post-swap answer: %q", reply)
	}
}
