package agent

import (
	goruntime "runtime" // runtime is this package's generation type
	"sync"
	"testing"
)

// globalSessionStore is the pre-sharding design kept as the benchmark
// baseline: one mutex in front of one map, so every concurrent chatter's
// session fetch serializes on the same lock.
type globalSessionStore struct {
	mu sync.Mutex
	m  map[sessionKey]*Session
}

func (g *globalSessionStore) get(key sessionKey) (*Session, bool) {
	g.mu.Lock()
	sess, ok := g.m[key]
	g.mu.Unlock()
	return sess, ok
}

// benchSessions pre-populates 10k+ live sessions across three tenants —
// the regime the striped store is built for.
const benchSessions = 10_000

func benchKeys() []sessionKey {
	tenants := []string{"default", "medical", "retail"}
	keys := make([]sessionKey, benchSessions)
	for i := range keys {
		keys[i] = sessionKey{ws: tenants[i%len(tenants)], id: "sess-" + itoa(i)}
	}
	return keys
}

// benchmarkLookup hammers the lookup path from 16 concurrent chatters:
// fetch a pseudo-random live session and stamp its activity, which is
// exactly what Server.session does per turn for an existing session.
func benchmarkLookup(b *testing.B, lookup func(key sessionKey) (*Session, bool)) {
	keys := benchKeys()
	const chatters = 16
	prev := goruntime.GOMAXPROCS(chatters)
	defer goruntime.GOMAXPROCS(prev)
	b.SetParallelism(1) // RunParallel spawns GOMAXPROCS×parallelism goroutines
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		// Cheap per-goroutine xorshift so the RNG itself never contends.
		x := uint64(0x9E3779B97F4A7C15)
		for pb.Next() {
			x ^= x << 13
			x ^= x >> 7
			x ^= x << 17
			sess, ok := lookup(keys[x%benchSessions])
			if !ok {
				b.Fatal("benchmark key missing")
			}
			sess.Touch()
		}
	})
}

func BenchmarkSessionLookupStriped(b *testing.B) {
	st := newSessionStore(DefaultSessionShards)
	for _, key := range benchKeys() {
		st.getOrCreate(key)
	}
	benchmarkLookup(b, st.get)
}

func BenchmarkSessionLookupGlobal(b *testing.B) {
	g := &globalSessionStore{m: make(map[sessionKey]*Session)}
	for _, key := range benchKeys() {
		g.m[key] = NewSession()
	}
	benchmarkLookup(b, g.get)
}
