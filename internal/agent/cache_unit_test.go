package agent

import (
	"fmt"
	"testing"

	"ontoconv/internal/sqlx"
)

func TestAnswerKeyCanonical(t *testing.T) {
	a := answerKey("Intent", map[string]string{"Drug": "Aspirin", "AgeGroup": "Adult"})
	b := answerKey("Intent", map[string]string{"AgeGroup": "Adult", "Drug": "Aspirin"})
	if a != b {
		t.Fatalf("key depends on map order: %q vs %q", a, b)
	}
	if c := answerKey("Other", map[string]string{"Drug": "Aspirin", "AgeGroup": "Adult"}); c == a {
		t.Fatal("different intents share a key")
	}
	if c := answerKey("Intent", map[string]string{"Drug": "Aspirin"}); c == a {
		t.Fatal("different bindings share a key")
	}
}

func TestAnswerCacheLRUEviction(t *testing.T) {
	c := newAnswerCache(3)
	res := func(i int) *sqlx.Result { return &sqlx.Result{Columns: []string{fmt.Sprint(i)}} }
	for i := 0; i < 3; i++ {
		c.put(fmt.Sprintf("k%d", i), res(i))
	}
	// touch k0 so k1 becomes the eviction victim
	if _, ok := c.get("k0"); !ok {
		t.Fatal("k0 missing")
	}
	c.put("k3", res(3))
	if c.len() != 3 {
		t.Fatalf("len = %d", c.len())
	}
	if _, ok := c.get("k1"); ok {
		t.Fatal("k1 should have been evicted")
	}
	for _, k := range []string{"k0", "k2", "k3"} {
		if _, ok := c.get(k); !ok {
			t.Fatalf("%s evicted unexpectedly", k)
		}
	}
	// updating an existing key must not grow the cache
	c.put("k3", res(99))
	if c.len() != 3 {
		t.Fatalf("len after update = %d", c.len())
	}
	if got, _ := c.get("k3"); got.Columns[0] != "99" {
		t.Fatalf("update not applied: %v", got.Columns)
	}
}

func TestAnswerCacheDisabled(t *testing.T) {
	var c *answerCache // nil = disabled
	c.put("k", &sqlx.Result{})
	if _, ok := c.get("k"); ok {
		t.Fatal("nil cache returned a hit")
	}
	if c.len() != 0 {
		t.Fatal("nil cache has entries")
	}
	if newAnswerCache(-1) != nil || newAnswerCache(0) != nil {
		t.Fatal("non-positive capacity must disable the cache")
	}
}
