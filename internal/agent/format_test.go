package agent

import (
	"strings"
	"testing"

	"ontoconv/internal/core"
	"ontoconv/internal/kb"
	"ontoconv/internal/sqlx"
)

// formatFixture builds a minimal agent wired to a two-table KB, for
// white-box tests of formatting and disambiguation that don't need the
// full medical environment.
func formatFixture(t *testing.T) (*Agent, *kb.KB) {
	t.Helper()
	base := kb.New()
	drug, err := base.CreateTable(kb.Schema{
		Name: "drug",
		Columns: []kb.Column{
			{Name: "drug_id", Type: kb.TextCol, NotNull: true},
			{Name: "name", Type: kb.TextCol, NotNull: true},
		},
		PrimaryKey: "drug_id",
	})
	if err != nil {
		t.Fatal(err)
	}
	prec, err := base.CreateTable(kb.Schema{
		Name: "precaution",
		Columns: []kb.Column{
			{Name: "p_id", Type: kb.TextCol, NotNull: true},
			{Name: "drug_id", Type: kb.TextCol, NotNull: true},
			{Name: "description", Type: kb.TextCol},
		},
		PrimaryKey: "p_id",
	})
	if err != nil {
		t.Fatal(err)
	}
	drug.MustInsert(kb.Row{"D1", "Calcium Carbonate"})
	drug.MustInsert(kb.Row{"D2", "Calcium Citrate"})
	drug.MustInsert(kb.Row{"D3", "Aspirin"})
	prec.MustInsert(kb.Row{"P1", "D1", "Take with food."})
	prec.MustInsert(kb.Row{"P2", "D2", "Avoid with iron."})
	prec.MustInsert(kb.Row{"P3", "D3", "Watch for GI bleeding."})

	tpl := sqlx.MustTemplate("SELECT p.description FROM precaution p INNER JOIN drug d ON p.drug_id = d.drug_id WHERE d.name = <@Drug>")
	space := &core.Space{
		Intents: []core.Intent{
			{
				Name: "Precautions of Drug", Kind: core.LookupPattern,
				Examples: []string{
					"show me the precautions for Aspirin",
					"precautions for Calcium Carbonate",
					"give me precautions for Calcium Citrate",
					"what are the precautions of Aspirin",
					"list the precautions for Calcium Carbonate",
					"precautions of Calcium Citrate please",
				},
				Template:      tpl,
				Required:      []core.EntitySpec{{Entity: "Drug", Param: "Drug", Elicitation: "For which drug?"}},
				Response:      "Here are the precautions for {{Drug}}:",
				AnswerConcept: "Precaution",
			},
		},
		Entities: []core.EntityDef{
			{Name: "Drug", Kind: "instance", Values: []core.EntityValue{
				{Value: "Calcium Carbonate"}, {Value: "Calcium Citrate"}, {Value: "Aspirin"},
			}},
		},
	}
	space.Intents = append(space.Intents, core.ConversationManagementIntents()...)
	a, err := New(space, base, Options{Greeting: "hi"})
	if err != nil {
		t.Fatal(err)
	}
	return a, base
}

func TestPartialEntityDisambiguation(t *testing.T) {
	a, _ := formatFixture(t)
	s := NewSession()
	// "calcium" is a word of two canonical values -> the agent must ask
	r := a.Respond(s, "precautions for calcium")
	if !strings.Contains(r, "Calcium Carbonate") || !strings.Contains(r, "Calcium Citrate") ||
		!strings.Contains(r, "Which one do you mean") {
		t.Fatalf("disambiguation = %q", r)
	}
	// the user picks one; the pending request completes
	r = a.Respond(s, "calcium carbonate")
	if !strings.Contains(r, "Take with food.") {
		t.Fatalf("choice resolution = %q", r)
	}
}

func TestChoiceResolutionBySubstring(t *testing.T) {
	a, _ := formatFixture(t)
	s := NewSession()
	a.Respond(s, "precautions for calcium")
	// answering with the distinguishing word only
	r := a.Respond(s, "citrate")
	if !strings.Contains(r, "Avoid with iron.") {
		t.Fatalf("substring choice = %q", r)
	}
}

func TestChoiceAbandonedFallsThrough(t *testing.T) {
	a, _ := formatFixture(t)
	s := NewSession()
	a.Respond(s, "precautions for calcium")
	// the user ignores the question and asks something complete instead
	r := a.Respond(s, "precautions for Aspirin")
	if !strings.Contains(r, "GI bleeding") {
		t.Fatalf("moved-on handling = %q", r)
	}
	if s.Ctx.Choice != nil {
		t.Fatal("stale choice not cleared")
	}
}

func TestGroupedList(t *testing.T) {
	rows := [][]string{
		{"Acitretin", "Effective"},
		{"Adalimumab", "Effective"},
		{"HerbX", "Possibly Effective"},
	}
	got := groupedList(rows, 10)
	if !strings.Contains(got, "Effective: Acitretin, Adalimumab") {
		t.Fatalf("groupedList = %q", got)
	}
	// "Effective" group must come first
	if strings.Index(got, "Effective:") > strings.Index(got, "Possibly Effective:") {
		t.Fatalf("group order = %q", got)
	}
}

func TestGroupedListCaps(t *testing.T) {
	var rows [][]string
	for i := 0; i < 15; i++ {
		rows = append(rows, []string{"Drug" + string(rune('A'+i)), "Effective"})
	}
	got := groupedList(rows, 5)
	if !strings.Contains(got, "…") {
		t.Fatalf("cap not applied: %q", got)
	}
}

func TestGroupedListEmptyKey(t *testing.T) {
	got := groupedList([][]string{{"X", ""}}, 10)
	if !strings.Contains(got, "Listed: X") {
		t.Fatalf("empty group label = %q", got)
	}
}

func TestJoinOr(t *testing.T) {
	if joinOr(nil) != "" || joinOr([]string{"a"}) != "a" {
		t.Fatal("joinOr base cases")
	}
	if got := joinOr([]string{"a", "b", "c"}); got != "a, b or c" {
		t.Fatalf("joinOr = %q", got)
	}
}

func TestIntentPhrase(t *testing.T) {
	cases := map[string]string{
		"Precautions of Drug":       "precautions",
		"Dose Adjustments for Drug": "dose adjustments",
		"DRUG_GENERAL":              "drug_general",
	}
	for in, want := range cases {
		if got := intentPhrase(in); got != want {
			t.Errorf("intentPhrase(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestAnswerShapedHeuristics(t *testing.T) {
	a, _ := formatFixture(t)
	// concept-kind mentions are never answer-shaped — build a recognizer
	// hit via the Concepts def would require one; here we check the
	// short-utterance and coverage rules instead.
	if !a.runtime().answerShaped(nil, "yes it is") {
		t.Fatal("short utterances are answer-shaped")
	}
	if a.runtime().answerShaped(nil, "this is a very long sentence that mentions nothing at all here") {
		t.Fatal("long mention-free utterances are not answer-shaped")
	}
}

func TestNoResultsAnswer(t *testing.T) {
	a, base := formatFixture(t)
	// remove matching rows: ask for a drug with no precautions
	tbl := base.Table("precaution")
	tbl.Rows = tbl.Rows[:0]
	s := NewSession()
	r := a.Respond(s, "precautions for Aspirin")
	if !strings.Contains(r, "couldn't find any results") {
		t.Fatalf("no-results = %q", r)
	}
}
