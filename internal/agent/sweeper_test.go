package agent_test

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"ontoconv/internal/agent"
)

// TestBackgroundSweeperEvictsIdleSessions proves sweeper liveness without
// /metrics scrapes: an idle session is evicted by the background ticker
// alone, observed through an injected clock.
func TestBackgroundSweeperEvictsIdleSessions(t *testing.T) {
	srv := agent.NewServer(fixture(t))
	srv.SetIdleTTL(time.Minute)

	var mu sync.Mutex
	now := time.Now()
	srv.SetClock(func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		return now
	})

	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/chat", "application/json",
		strings.NewReader(`{"session":"sweep1","message":"precautions for Aspirin"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("chat status = %d", resp.StatusCode)
	}
	if st := getStatus(t, ts.URL+"/context?session=sweep1"); st != http.StatusOK {
		t.Fatalf("context before idle = %d, want 200", st)
	}

	// Jump the server clock past the TTL; the session's real last-active
	// timestamp is now far in the injected past.
	mu.Lock()
	now = now.Add(2 * time.Minute)
	mu.Unlock()

	stop := srv.StartSweeper(5 * time.Millisecond)
	defer stop()

	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if getStatus(t, ts.URL+"/context?session=sweep1") == http.StatusNotFound {
			stop()
			stop() // idempotent
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("background sweeper never evicted the idle session (no /metrics scrape issued)")
}

func getStatus(t *testing.T, url string) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp.StatusCode
}
