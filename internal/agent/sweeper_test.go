package agent_test

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"ontoconv/internal/agent"
)

// TestBackgroundSweeperEvictsIdleSessions proves sweeper liveness without
// /metrics scrapes: an idle session is evicted by the background ticker
// alone, observed through an injected clock.
func TestBackgroundSweeperEvictsIdleSessions(t *testing.T) {
	srv := agent.NewServer(fixture(t))
	srv.SetIdleTTL(time.Minute)

	var mu sync.Mutex
	now := time.Now()
	srv.SetClock(func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		return now
	})

	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/chat", "application/json",
		strings.NewReader(`{"session":"sweep1","message":"precautions for Aspirin"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("chat status = %d", resp.StatusCode)
	}
	if st := getStatus(t, ts.URL+"/context?session=sweep1"); st != http.StatusOK {
		t.Fatalf("context before idle = %d, want 200", st)
	}

	// Jump the server clock past the TTL; the session's real last-active
	// timestamp is now far in the injected past.
	mu.Lock()
	now = now.Add(2 * time.Minute)
	mu.Unlock()

	stop := srv.StartSweeper(5 * time.Millisecond)
	defer stop()

	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if getStatus(t, ts.URL+"/context?session=sweep1") == http.StatusNotFound {
			stop()
			stop() // idempotent
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("background sweeper never evicted the idle session (no /metrics scrape issued)")
}

// TestAmortizedSweepEvictsWithinBound proves the one-shard-per-tick
// sweeper's liveness bound: with sessions spread across many shards, every
// idle session is evicted within TTL + shards×interval of going idle (the
// cursor needs at most one full lap). The old design swept the whole map
// under one lock per tick; the amortized design must not trade that for
// sessions that lingeringly survive.
func TestAmortizedSweepEvictsWithinBound(t *testing.T) {
	srv := agent.NewServer(fixture(t))
	srv.SetIdleTTL(time.Minute)

	var mu sync.Mutex
	now := time.Now()
	srv.SetClock(func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		return now
	})

	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Enough sessions to land in many distinct shards.
	const n = 32
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("amort%d", i)
		resp, err := http.Post(ts.URL+"/chat", "application/json",
			strings.NewReader(`{"session":"`+id+`","message":"precautions for Aspirin"}`))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}

	mu.Lock()
	now = now.Add(2 * time.Minute) // all n sessions are now idle past TTL
	mu.Unlock()

	const interval = 2 * time.Millisecond
	start := time.Now()
	stop := srv.StartSweeper(interval)
	defer stop()

	// Liveness bound: the TTL is already exceeded, so a full cursor lap —
	// shards×interval — must clear everything. Generous slack for
	// scheduling noise on loaded CI machines.
	bound := time.Duration(agent.DefaultSessionShards)*interval*4 + 2*time.Second
	for {
		alive := 0
		for i := 0; i < n; i++ {
			if getStatus(t, fmt.Sprintf("%s/context?session=amort%d", ts.URL, i)) == http.StatusOK {
				alive++
			}
		}
		if alive == 0 {
			return
		}
		if time.Since(start) > bound {
			t.Fatalf("%d/%d idle sessions still alive after %v (bound %v = shards×interval with slack)",
				alive, n, time.Since(start), bound)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func getStatus(t *testing.T, url string) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp.StatusCode
}
