package agent

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"ontoconv/internal/core"
	"ontoconv/internal/dialogue"
	"ontoconv/internal/nlu"
	"ontoconv/internal/obs"
	"ontoconv/internal/sqlx"
)

// Respond processes one user utterance and returns the agent's reply,
// recording the exchange (with its per-stage trace) on the session. The
// turn pins the runtime generation current at entry: a concurrent bundle
// swap never changes artifacts mid-turn.
func (a *Agent) Respond(s *Session, utterance string) string {
	return a.runtime().respondTurn(s, utterance)
}

func (a *runtime) respondTurn(s *Session, utterance string) string {
	s.Ctx.NextTurn()
	s.Touch()
	start := time.Now()
	turn := Turn{User: utterance, Trace: obs.NewTrace(s.Ctx.Turn)}
	reply := a.respond(s, utterance, &turn)
	turn.Agent = reply
	s.Ctx.LastResponse = reply
	turn.Trace.Finish()
	s.Turns = append(s.Turns, turn)
	elapsed := time.Since(start)
	a.metrics.observeTurn(elapsed, &turn)
	// Offer the finished trace to the slowest-K reservoir, tagged with
	// this turn's pinned generation: a turn that outlived a hot swap is
	// rejected rather than retained against artifacts it never ran on.
	a.metrics.Slow.Offer(a.version, elapsed, turn.Trace)
	return reply
}

func (a *runtime) respond(s *Session, utterance string, turn *Turn) string {
	ctx := s.Ctx
	sp := turn.Trace.StartSpan("entity_recognition")
	mentions := a.rec.Recognize(utterance)
	sp.AttrInt("mentions", len(mentions)).End()

	// 1. A pending partial-entity disambiguation consumes the answer
	// (§6.1: base "Calcium" -> choose the salt).
	if ctx.Choice != nil {
		entity := ctx.Choice.Entity
		if value, ok := a.resolveChoice(ctx.Choice, utterance, mentions); ok {
			ctx.Bind(entity, value)
			ctx.Choice = nil
			if ctx.Intent != "" {
				return a.fulfill(s, turn)
			}
			// No pending request: fall back to the entity's general
			// proposal flow when one exists ("calcium" alone, then a
			// salt choice).
			if _, ok := a.generalIntents[entity]; ok {
				return a.propose(ctx, entity)
			}
			return a.tree.Fallback.Response
		}
		ctx.Choice = nil // user moved on; fall through
	}

	// 2. If the agent just elicited a slot and this answer-shaped
	// utterance provides it, bind and continue regardless of what the
	// classifier thinks ("adult" answers "Adult or pediatric?", §6.3
	// line 04). Utterances that carry their own intent signal (a concept
	// mention like "dosage", or mostly non-entity words) fall through to
	// classification instead.
	if ctx.Intent != "" {
		if missing := a.firstMissing(ctx); missing != "" {
			if m, ok := mentionOfType(mentions, missing); ok && a.answerShaped(mentions, utterance) {
				if m.Partial {
					return a.askChoice(ctx, m)
				}
				a.bindMentions(ctx, mentions)
				return a.fulfill(s, turn)
			}
		}
	}

	// 3. Incremental modification of the current request (§6.3 lines 06
	// and 14: "I mean pediatric", "how about for Fluocinonide?"). The
	// paper: the conversation "treats it as an operation on the previous
	// request if it contains intents and entities related to that
	// request" — we require every mentioned entity to be a parameter of
	// the active intent, plus either a discourse marker or the utterance
	// being mostly entity mentions.
	if a.isIncrementalModification(ctx, mentions, utterance) {
		a.bindMentions(ctx, mentions)
		return a.fulfill(s, turn)
	}

	sp = turn.Trace.StartSpan("intent_classification")
	// Only the winner and its confidence are consumed here, so the
	// allocation-free top-1 path replaces the full Predict; both return
	// bit-identical (intent, confidence) pairs.
	intent, conf := nlu.PredictTop(a.clf, utterance)
	pred := nlu.Prediction{Intent: intent, Confidence: conf}
	sp.Attr("intent", pred.Intent).AttrFloat("confidence", pred.Confidence).End()
	if pred.Confidence >= a.minConf {
		a.metrics.Classified.With(pred.Intent).Inc()
	} else {
		a.metrics.LowConfidence.Inc()
	}

	// 3. Conversation management (§5.2 step 3).
	if a.cmIntents[pred.Intent] && pred.Confidence >= a.minConf {
		turn.Intent = pred.Intent
		return a.handleCM(s, pred.Intent, utterance, turn)
	}

	// 4. Ambiguous partial entity ("calcium") — elicit a choice,
	// remembering the request intent the utterance carried so the
	// resolution can complete it.
	for _, m := range mentions {
		if m.Partial && len(m.Candidates) > 1 && a.entityKinds[m.Type] == "instance" {
			if pred.Confidence >= a.minConf && !a.cmIntents[pred.Intent] {
				if in := a.intent(pred.Intent); in != nil && in.Template != nil {
					ctx.Intent = pred.Intent
					a.bindMentions(ctx, mentions)
				}
			}
			return a.askChoice(ctx, m)
		}
	}

	// 5. Entity-only input (DRUG_GENERAL, §6.1/§6.3 "MDX User 480").
	if concept, ok := a.generalConceptFor(pred.Intent); ok && pred.Confidence >= a.minConf {
		turn.Intent = pred.Intent
		if m, found := mentionOfType(mentions, concept); found && !m.Partial {
			ctx.Bind(concept, m.Value)
		}
		if _, bound := ctx.Value(concept); bound {
			return a.propose(ctx, concept)
		}
		return a.tree.Fallback.Response
	}

	// 6. A new (or repeated) task request.
	if pred.Confidence >= a.minConf && a.intent(pred.Intent) != nil {
		ctx.Intent = pred.Intent
		ctx.Proposal = nil
		a.bindMentions(ctx, mentions)
		return a.fulfill(s, turn)
	}

	// 7. Low-confidence utterance that still mentions entities related
	// to the active request — treat it as an operation on that request.
	if ctx.Intent != "" && a.bindMentions(ctx, mentions) > 0 {
		return a.fulfill(s, turn)
	}

	// 8. No intent, but the utterance names an entity with a general
	// flow — start it even though the classifier was unsure.
	for concept := range a.generalIntents {
		if m, ok := mentionOfType(mentions, concept); ok && !m.Partial {
			ctx.Bind(concept, m.Value)
			turn.Intent = a.generalIntents[concept]
			return a.propose(ctx, concept)
		}
	}

	return a.tree.Fallback.Response
}

// fulfill runs slot filling for the active intent: either the next
// elicitation or the final answer.
func (a *runtime) fulfill(s *Session, turn *Turn) string {
	ctx := s.Ctx
	in := a.intent(ctx.Intent)
	if in == nil || in.Template == nil {
		return a.tree.Fallback.Response
	}
	sp := turn.Trace.StartSpan("slot_filling").Attr("intent", ctx.Intent)
	// Assume declared defaults (Table 3: "The dialogue tree must either
	// assume a value of a required entity or elicit a value").
	for _, req := range in.Required {
		if req.Default != "" && !ctx.Bound(req.Entity) {
			ctx.Bind(req.Entity, req.Default)
		}
	}
	node := a.tree.Match(ctx.Intent, ctx.Bound)
	sp.Attr("action", string(node.Action)).End()
	switch node.Action {
	case dialogue.ActElicit:
		turn.Intent = ctx.Intent
		return node.Response
	case dialogue.ActAnswer:
		turn.Intent = ctx.Intent
		return a.answer(in, ctx, turn)
	default:
		return a.tree.Fallback.Response
	}
}

// answer resolves the intent's slot bindings, executes its query — answer
// cache first, then the precompiled plan, then the interpreter — and
// renders the response.
func (a *runtime) answer(in *core.Intent, ctx *dialogue.Context, turn *Turn) string {
	sp := turn.Trace.StartSpan("sql_instantiate")
	args := map[string]string{}
	for _, req := range in.Required {
		v, ok := ctx.Value(req.Entity)
		if !ok {
			sp.Attr("error", "unbound "+req.Entity).End()
			return a.tree.Fallback.Response
		}
		args[req.Param] = v
	}
	sp.AttrInt("args", len(args)).End()

	sp = turn.Trace.StartSpan("kb_execute")
	res, err := a.execute(in, args, sp)
	if err != nil {
		sp.Attr("error", err.Error()).End()
		return a.tree.Fallback.Response
	}
	sp.AttrInt("rows", len(res.Rows)).End()
	turn.Answered = true

	sp = turn.Trace.StartSpan("answer_rendering")
	reply := a.formatAnswer(in, ctx, res)
	sp.End()
	return reply
}

// execute runs one fully-bound intent query. Results are cached per
// (intent, bindings) within this runtime generation; cached results are
// shared read-only. The cache lock is never held across execution, so a
// cold key may execute twice under concurrency — benign, the results are
// identical.
func (a *runtime) execute(in *core.Intent, args map[string]string, sp *obs.SpanRef) (*sqlx.Result, error) {
	key := answerKey(in.Name, args)
	if res, ok := a.cache.get(key); ok {
		a.metrics.AnswerCache.With("hit").Inc()
		sp.Attr("cache", "hit")
		return res, nil
	}
	if a.cache != nil {
		a.metrics.AnswerCache.With("miss").Inc()
		sp.Attr("cache", "miss")
	}
	res, err := a.executeUncached(in, args)
	if err != nil {
		return nil, err
	}
	a.cache.put(key, res)
	return res, nil
}

// executeUncached prefers the precompiled plan; templates the planner
// could not compile take the interpreted path.
func (a *runtime) executeUncached(in *core.Intent, args map[string]string) (*sqlx.Result, error) {
	if plan, ok := a.plans[in.Name]; ok {
		return plan.Exec(args)
	}
	stmt, err := in.Template.Instantiate(args)
	if err != nil {
		return nil, err
	}
	return sqlx.Execute(a.base, stmt)
}

// handleCM executes a conversation-management action.
func (a *runtime) handleCM(s *Session, intent, utterance string, turn *Turn) string {
	ctx := s.Ctx
	node := a.tree.Match(intent, ctx.Bound)
	switch node.Action {
	case dialogue.ActGoodbye:
		ctx.Closed = true
		return node.Response
	case dialogue.ActRepeat:
		if ctx.LastResponse == "" {
			return "I haven't said anything yet. How can I help?"
		}
		return "I said: " + ctx.LastResponse
	case dialogue.ActDefine:
		// B2.5.0 Definition Request Repair: REPAIR MARKER + DEFINITION.
		if def, ok := a.lookupDefinition(utterance); ok {
			return "Oh. " + def
		}
		return "I mean it in its usual clinical sense. Could you tell me which term is unclear?"
	case dialogue.ActAbort:
		ctx.ClearTask()
		return "OK. Please modify your search."
	case dialogue.ActAffirm:
		if ctx.Proposal != nil {
			p := ctx.Proposal
			ctx.Proposal = nil
			ctx.Intent = p.Intent
			for e, v := range p.Assume {
				ctx.Bind(e, v)
			}
			return a.fulfill(s, turn)
		}
		return node.Response
	case dialogue.ActDeny:
		if ctx.Proposal != nil {
			p := ctx.Proposal
			if len(p.Alternatives) > 0 {
				next := p.Alternatives[0]
				ctx.Proposal = &dialogue.Proposal{
					Intent:       next,
					Alternatives: p.Alternatives[1:],
					Assume:       p.Assume,
				}
				return a.proposalQuestion(next, p.Assume)
			}
			ctx.Proposal = nil
			return "OK. Please modify your search."
		}
		// Plain "no" after "Anything else?" closes the conversation
		// (§6.3 lines 18-19).
		ctx.Closed = true
		return "Thank you for using Micromedex. Goodbye."
	case dialogue.ActCheckAnything:
		return node.Response
	default:
		return node.Response
	}
}

// propose starts (or restarts) the proposal flow for an entity-only input.
func (a *runtime) propose(ctx *dialogue.Context, concept string) string {
	value, _ := ctx.Value(concept)
	options := a.proposals[concept]
	if len(options) == 0 {
		return a.tree.Fallback.Response
	}
	assume := map[string]string{concept: value}
	ctx.Proposal = &dialogue.Proposal{
		Intent:       options[0],
		Alternatives: limit(options[1:], 1), // at most two proposals total (§6.3)
		Assume:       assume,
	}
	return a.proposalQuestion(options[0], assume)
}

// proposalQuestion renders "Would you like to see the precautions of
// benztropine mesylate?".
func (a *runtime) proposalQuestion(intent string, assume map[string]string) string {
	phrase := intentPhrase(intent)
	var value string
	for _, v := range assume {
		value = v
	}
	return fmt.Sprintf("Would you like to see the %s of %s?", phrase, strings.ToLower(value))
}

// intentPhrase extracts the answer phrase from a lookup intent name:
// "Precautions of Drug" -> "precautions".
func intentPhrase(name string) string {
	for _, sep := range []string{" of ", " for "} {
		if i := strings.Index(name, sep); i > 0 {
			return strings.ToLower(name[:i])
		}
	}
	return strings.ToLower(name)
}

// askChoice records a pending disambiguation and asks the user to choose.
func (a *runtime) askChoice(ctx *dialogue.Context, m nlu.Mention) string {
	cands := limit(m.Candidates, 5)
	ctx.Choice = &dialogue.Choice{Entity: m.Type, Candidates: cands}
	return fmt.Sprintf("Which one do you mean: %s?", joinOr(cands))
}

// resolveChoice matches the user's reply against the pending candidates.
func (a *runtime) resolveChoice(c *dialogue.Choice, utterance string, mentions []nlu.Mention) (string, bool) {
	for _, m := range mentions {
		if m.Type != c.Entity || m.Partial {
			continue
		}
		for _, cand := range c.Candidates {
			if m.Value == cand {
				return cand, true
			}
		}
	}
	low := strings.ToLower(strings.TrimSpace(utterance))
	for _, cand := range c.Candidates {
		if strings.Contains(strings.ToLower(cand), low) && low != "" {
			return cand, true
		}
	}
	return "", false
}

// lookupDefinition finds the longest glossary key mentioned in the
// utterance.
func (a *runtime) lookupDefinition(utterance string) (string, bool) {
	low := strings.ToLower(utterance)
	keys := make([]string, 0, len(a.defs))
	for k := range a.defs {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if len(keys[i]) != len(keys[j]) {
			return len(keys[i]) > len(keys[j])
		}
		return keys[i] < keys[j]
	})
	for _, k := range keys {
		if strings.Contains(low, k) {
			return a.defs[k], true
		}
	}
	return "", false
}

// answerShaped reports whether the utterance looks like a bare slot
// answer: no concept mention (those signal a fresh request), and either
// very short, mostly covered by entity mentions, or led by a discourse
// marker.
func (a *runtime) answerShaped(mentions []nlu.Mention, utterance string) bool {
	covered := 0
	for _, m := range mentions {
		if a.entityKinds[m.Type] == "concept" {
			return false
		}
		covered += m.End - m.Start
	}
	total := len(nlu.Tokenize(utterance))
	if total <= 4 {
		return true
	}
	if total > 0 && float64(covered)/float64(total) >= 0.5 {
		return true
	}
	low := strings.ToLower(utterance)
	for _, marker := range []string{"i mean", "how about", "what about"} {
		if strings.Contains(low, marker) {
			return true
		}
	}
	return false
}

// isIncrementalModification decides whether the utterance operates on the
// active request rather than starting a new one.
func (a *runtime) isIncrementalModification(ctx *dialogue.Context, mentions []nlu.Mention, utterance string) bool {
	if ctx.Intent == "" {
		return false
	}
	in := a.intent(ctx.Intent)
	if in == nil || in.Template == nil {
		return false
	}
	params := map[string]bool{}
	for _, spec := range in.Required {
		params[spec.Entity] = true
	}
	for _, spec := range in.Optional {
		params[spec.Entity] = true
	}
	// The same surface word can mention several entity types ("pediatric"
	// is both an AgeGroup and a Population value); a span counts as
	// fitting if ANY of its readings is a parameter of the request, and
	// the whole utterance is rejected only if some span fits nothing.
	type span struct{ start, end int }
	fits := map[span]bool{}
	seen := map[span]bool{}
	for _, m := range mentions {
		if m.Partial {
			continue
		}
		kind := a.entityKinds[m.Type]
		if kind != "instance" && kind != "value" {
			continue
		}
		sp := span{m.Start, m.End}
		seen[sp] = true
		if params[m.Type] {
			fits[sp] = true
		}
	}
	if len(seen) == 0 {
		return false
	}
	covered := 0
	for sp := range seen {
		if !fits[sp] {
			return false // names an entity outside this request
		}
		covered += sp.end - sp.start
	}
	low := strings.ToLower(utterance)
	for _, marker := range []string{"i mean", "how about", "what about", "and for", "instead", "make that", "actually"} {
		if strings.Contains(low, marker) {
			return true
		}
	}
	total := len(nlu.Tokenize(utterance))
	return total > 0 && float64(covered)/float64(total) >= 0.5
}

// bindMentions stores instance and value mentions into the context and
// returns how many were bound.
func (a *runtime) bindMentions(ctx *dialogue.Context, mentions []nlu.Mention) int {
	n := 0
	for _, m := range mentions {
		if m.Partial {
			continue
		}
		kind := a.entityKinds[m.Type]
		if kind != "instance" && kind != "value" {
			continue
		}
		ctx.Bind(m.Type, m.Value)
		n++
	}
	return n
}

// firstMissing returns the first required entity of the active intent not
// bound in context (considering defaults), or "".
func (a *runtime) firstMissing(ctx *dialogue.Context) string {
	in := a.intent(ctx.Intent)
	if in == nil {
		return ""
	}
	for _, req := range in.Required {
		if req.Default != "" {
			continue
		}
		if !ctx.Bound(req.Entity) {
			return req.Entity
		}
	}
	return ""
}

// generalConceptFor maps a *_GENERAL intent name back to its concept.
func (a *runtime) generalConceptFor(intent string) (string, bool) {
	for concept, name := range a.generalIntents {
		if name == intent {
			return concept, true
		}
	}
	return "", false
}

func mentionOfType(mentions []nlu.Mention, entityType string) (nlu.Mention, bool) {
	for _, m := range mentions {
		if m.Type == entityType {
			return m, true
		}
	}
	return nlu.Mention{}, false
}

func joinOr(items []string) string {
	switch len(items) {
	case 0:
		return ""
	case 1:
		return items[0]
	}
	return strings.Join(items[:len(items)-1], ", ") + " or " + items[len(items)-1]
}

func limit(items []string, n int) []string {
	if len(items) <= n {
		return items
	}
	return items[:n]
}
