package ontoconv_test

import (
	"bytes"
	"testing"

	"ontoconv/internal/agent"
	"ontoconv/internal/dialogue"
	"ontoconv/internal/sim"
)

// TestSnapshotRoundTripOverSimulatedUsage property-tests the dialogue
// snapshot against the E3 usage study: the seeded Scripter plays the
// Table-5 intent mix — elicitation follow-ups, proposals, misspellings,
// gibberish, abandoned requests — and at every turn boundary the live
// context must (a) round-trip byte-identically through Snapshot/Restore
// and (b) drive the rest of the conversation exactly as the original
// would. Property (b) is checked by forking a migrated session from the
// restored context before each follow-up turn and replaying the same
// utterance into both: replies and post-turn snapshots must match.
// This is the invariant the cross-replica handoff rests on.
func TestSnapshotRoundTripOverSimulatedUsage(t *testing.T) {
	if testing.Short() {
		t.Skip("drives a few hundred simulated conversations")
	}
	_, space, ag := mdxFixture(t)

	cfg := sim.DefaultConfig()
	cfg.Seed = 20260808
	sc := sim.NewScripter(space, cfg)

	const interactions = 150
	var turns, followups, stateful int
	for i := 0; i < interactions; i++ {
		sp := sc.Next()
		if sp.Skip {
			continue
		}
		s := agent.NewSession()
		reply := ag.Respond(s, sp.Utterance)
		for {
			turns++
			snap := s.Ctx.Snapshot()
			restored, err := dialogue.Restore(snap)
			if err != nil {
				t.Fatalf("interaction %d (%q): restore: %v", i, sp.Utterance, err)
			}
			if again := restored.Snapshot(); !bytes.Equal(again, snap) {
				t.Fatalf("interaction %d (%q): round-trip not byte-identical:\n  first:  %x\n  second: %x",
					i, sp.Utterance, snap, again)
			}
			if restored.Intent != "" || restored.Proposal != nil || restored.Choice != nil || len(restored.Bindings()) > 0 {
				stateful++
			}

			last := s.LastTurn()
			next, done := sc.React(sp, reply, last.Answered, s.Closed())
			if done {
				break
			}
			followups++

			// Fork: a migrated session resumes from the restored context
			// and must shadow the original turn for turn.
			fork := agent.NewSession()
			fork.Ctx = restored
			forkReply := ag.Respond(fork, next)
			reply = ag.Respond(s, next)
			if forkReply != reply {
				t.Fatalf("interaction %d: fork diverged on %q:\n  original: %q\n  restored: %q",
					i, next, reply, forkReply)
			}
			if a, b := s.Ctx.Snapshot(), fork.Ctx.Snapshot(); !bytes.Equal(a, b) {
				t.Fatalf("interaction %d: post-turn state diverged on %q:\n  original: %x\n  restored: %x",
					i, next, a, b)
			}
		}
	}

	// The property is only as strong as the states it visits: the mix
	// must have produced real multi-turn, stateful dialogue.
	if followups < 10 {
		t.Fatalf("only %d follow-up turns in %d interactions — the sim mix went flat", followups, interactions)
	}
	if stateful < interactions/4 {
		t.Fatalf("only %d/%d turn boundaries carried dialogue state", stateful, turns)
	}
	t.Logf("checked %d turn boundaries (%d follow-ups, %d stateful) across %d interactions",
		turns, followups, stateful, interactions)
}
