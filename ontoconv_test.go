package ontoconv_test

import (
	"strings"
	"sync"
	"testing"

	"ontoconv"
)

var (
	once    sync.Once
	mdxBase *ontoconv.KB
	mdxOnto *ontoconv.Ontology
	mdxSp   *ontoconv.Space
	mdxAg   *ontoconv.Agent
	mdxErr  error
)

func mdxFixture(t *testing.T) (*ontoconv.KB, *ontoconv.Space, *ontoconv.Agent) {
	t.Helper()
	once.Do(func() {
		mdxBase, mdxOnto, mdxSp, mdxErr = ontoconv.MedicalBootstrap()
		if mdxErr != nil {
			return
		}
		mdxAg, mdxErr = ontoconv.NewAgent(mdxSp, mdxBase, ontoconv.AgentOptions{})
	})
	if mdxErr != nil {
		t.Fatal(mdxErr)
	}
	return mdxBase, mdxSp, mdxAg
}

// TestQuickstartFlow exercises the README quickstart against the public
// facade: custom KB -> ontology discovery -> bootstrap -> agent.
func TestQuickstartFlow(t *testing.T) {
	base := ontoconv.NewKB()
	companies, err := base.CreateTable(ontoconv.Schema{
		Name: "company",
		Columns: []ontoconv.Column{
			{Name: "company_id", Type: ontoconv.TextCol, NotNull: true},
			{Name: "name", Type: ontoconv.TextCol, NotNull: true},
			{Name: "sector", Type: ontoconv.TextCol},
		},
		PrimaryKey: "company_id",
	})
	if err != nil {
		t.Fatal(err)
	}
	products, err := base.CreateTable(ontoconv.Schema{
		Name: "product",
		Columns: []ontoconv.Column{
			{Name: "product_id", Type: ontoconv.TextCol, NotNull: true},
			{Name: "name", Type: ontoconv.TextCol, NotNull: true},
			{Name: "company_id", Type: ontoconv.TextCol, NotNull: true},
			{Name: "category", Type: ontoconv.TextCol},
		},
		PrimaryKey: "product_id",
		ForeignKeys: []ontoconv.ForeignKey{
			{Column: "company_id", RefTable: "company", RefColumn: "company_id"},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	companies.MustInsert(ontoconv.Row{"C1", "AcmeCo", "Hardware"})
	companies.MustInsert(ontoconv.Row{"C2", "Globex", "Software"})
	products.MustInsert(ontoconv.Row{"P1", "Rocket Skates", "C1", "Gadgets"})
	products.MustInsert(ontoconv.Row{"P2", "Hypnotizer", "C2", "Appliances"})

	onto, err := ontoconv.GenerateOntology(base, ontoconv.DefaultOntogenConfig("shop"))
	if err != nil {
		t.Fatal(err)
	}
	cfg := ontoconv.DefaultBootstrapConfig()
	cfg.KeyConcepts.MinKeep = 1
	cfg.KeyConcepts.MaxKeep = 2
	space, err := ontoconv.Bootstrap(onto, base, cfg)
	if err != nil {
		t.Fatal(err)
	}
	agent, err := ontoconv.NewAgent(space, base, ontoconv.AgentOptions{Greeting: "hi"})
	if err != nil {
		t.Fatal(err)
	}
	session := ontoconv.NewSession()
	r := agent.Respond(session, "show me the products for AcmeCo")
	if !strings.Contains(r, "Rocket Skates") {
		t.Fatalf("quickstart answer = %q", r)
	}
	r = agent.Respond(session, "what about Globex?")
	if !strings.Contains(r, "Hypnotizer") {
		t.Fatalf("follow-up = %q", r)
	}
}

func TestFacadeMedicalPipeline(t *testing.T) {
	base, space, ag := mdxFixture(t)
	if len(space.Intents) < 30 {
		t.Fatalf("intents = %d", len(space.Intents))
	}
	session := ontoconv.NewSession()
	r := ag.Respond(session, "precautions for Aspirin")
	if !strings.Contains(r, "Aspirin") {
		t.Fatalf("answer = %q", r)
	}
	res, err := ontoconv.ExecSQL(base, "SELECT COUNT(*) FROM drug")
	if err != nil || res.Rows[0][0] != int64(200) {
		t.Fatalf("ExecSQL = %v %v", res, err)
	}
}

func TestFacadeNLQService(t *testing.T) {
	_, _, _ = mdxFixture(t)
	svc := ontoconv.NewNLQService(mdxOnto)
	sql, err := svc.BuildSQL(ontoconv.NLQRequest{
		Answer:   "Precaution",
		Distinct: true,
	})
	if err != nil || !strings.Contains(sql, "precaution") {
		t.Fatalf("BuildSQL = %q %v", sql, err)
	}
}

func TestFacadeClassifiers(t *testing.T) {
	for _, clf := range []ontoconv.Classifier{
		ontoconv.NewNaiveBayes(1.0),
		ontoconv.NewLogisticRegression(),
	} {
		if clf == nil {
			t.Fatal("nil classifier")
		}
	}
}

func TestFacadeUsageSimulation(t *testing.T) {
	_, _, ag := mdxFixture(t)
	cfg := ontoconv.DefaultUsageSimConfig()
	cfg.Interactions = 300
	log := ontoconv.SimulateUsage(ag, cfg)
	if len(log.Interactions) != 300 {
		t.Fatalf("interactions = %d", len(log.Interactions))
	}
	if log.OverallSuccessRate() < 0.8 {
		t.Fatalf("success = %.3f", log.OverallSuccessRate())
	}
}

func TestFacadeKeywordBaseline(t *testing.T) {
	base, space, _ := mdxFixture(t)
	kw := ontoconv.NewKeywordAgent(space, base)
	if _, intent := kw.Respond("precautions Aspirin"); intent == "" {
		t.Fatal("baseline did not answer")
	}
}
