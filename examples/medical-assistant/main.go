// Medical assistant: the paper's Conversational MDX use case (§6) end to
// end. It bootstraps the conversation space from the medical ontology and
// replays the published multi-turn conversation of §6.3 — slot filling,
// incremental modification, definition repair, topic transitions and the
// conversation close — plus the keyword-entry flow of "MDX User 480".
package main

import (
	"fmt"
	"log"

	"ontoconv"
)

func main() {
	base, onto, space, err := ontoconv.MedicalBootstrap()
	if err != nil {
		log.Fatal(err)
	}
	s := onto.Stats()
	fmt.Printf("MDX ontology: %d concepts, %d data properties, %d relationships\n",
		s.Concepts, s.DataProperties, s.ObjectProperties)
	fmt.Printf("conversation space: %d intents, %d entities, %d training examples\n\n",
		len(space.Intents), len(space.Entities), len(space.AllExamples()))

	agent, err := ontoconv.NewAgent(space, base, ontoconv.AgentOptions{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("--- the §6.3 sample conversation ---")
	session := ontoconv.NewSession()
	fmt.Println("A:", agent.Greeting())
	for _, u := range []string{
		"show me drugs that treat psoriasis",
		"adult",
		"I mean pediatric?",
		"what do you mean by effective?",
		"thanks",
		"dosage for Tazarotene",
		"how about for Fluocinonide?",
		"thanks",
		"no",
	} {
		fmt.Println("U:", u)
		fmt.Println("A:", agent.Respond(session, u))
	}

	fmt.Println()
	fmt.Println("--- the \"MDX User 480\" keyword-style session ---")
	session = ontoconv.NewSession()
	for _, u := range []string{
		"cogentin",
		"What are the side effects of cogentin",
	} {
		fmt.Println("U:", u)
		fmt.Println("A:", agent.Respond(session, u))
	}
	// Users can press the feedback buttons on any answer (§7.2).
	session.Feedback(true)
	fmt.Println("(user pressed thumbs up)")
}
