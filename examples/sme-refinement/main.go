// SME refinement: the human-in-the-loop half of the pipeline (paper
// §4.2.2, §4.3.2). The bootstrap proposes a conversation space; subject-
// matter experts then (1) prune query patterns unlikely in a real
// workload, (2) rename intents to the deployment vocabulary, (3) add
// expected patterns the ontology structure missed, (4) contribute synonym
// dictionaries, and (5) label prior user queries as extra training data.
// This example shows the space before and after each refinement.
package main

import (
	"fmt"
	"log"

	"ontoconv"
)

func main() {
	base, err := ontoconv.MedicalKB()
	if err != nil {
		log.Fatal(err)
	}
	onto, err := ontoconv.GenerateOntology(base, ontoconv.DefaultOntogenConfig("mdx-raw"))
	if err != nil {
		log.Fatal(err)
	}

	// --- pass 1: no SME feedback at all -------------------------------
	raw, err := ontoconv.Bootstrap(onto, base, ontoconv.DefaultBootstrapConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("bootstrap without SMEs: %d intents, %d training examples\n",
		len(raw.Intents), len(raw.AllExamples()))
	fmt.Println("sample generated intent names (pre-refinement):")
	shown := 0
	for _, in := range raw.Intents {
		if in.Kind == "lookup" && shown < 5 {
			fmt.Printf("  %q\n", in.Name)
			shown++
		}
	}

	// --- pass 2: with SME feedback -------------------------------------
	cfg := ontoconv.DefaultBootstrapConfig()
	cfg.Entities.ConceptSynonyms = map[string][]string{
		// Table 2: the domain vocabulary only experts know users say.
		"AdverseEffect": {"side effect", "side effects", "adverse reaction"},
		"Precaution":    {"caution", "safe to give"},
	}
	cfg.Feedback = ontoconv.SMEFeedback{
		// prune patterns "unlikely to be part of a real world workload"
		Prune: []string{"Brands of Drug", "Storages of Drug"},
		// rename to the vocabulary clinicians use
		Rename: map[string]string{
			"Adverse Effects of Drug": "Side Effects",
		},
		// a pattern the ontology structure cannot see
		ExpectedPatterns: []ontoconv.SMEPattern{
			{Intent: "Precautions of Drug", Text: "Is <@Drug> safe to give?"},
		},
		// labelled prior user queries (post-rename names)
		PriorQueries: map[string][]string{
			"Side Effects": {
				"What are the side effects of cogentin",
				"does aspirin have side effects",
			},
		},
	}
	refined, err := ontoconv.Bootstrap(onto, base, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nbootstrap with SMEs: %d intents, %d training examples\n",
		len(refined.Intents), len(refined.AllExamples()))
	if refined.Intent("Brands of Drug") == nil {
		fmt.Println("  pruned:   \"Brands of Drug\" (judged unlikely in real workloads)")
	}
	if refined.Intent("Side Effects") != nil {
		fmt.Println("  renamed:  \"Adverse Effects of Drug\" -> \"Side Effects\"")
	}
	in := refined.Intent("Precautions of Drug")
	for _, p := range in.Patterns {
		if p.FromSME {
			fmt.Printf("  added:    SME pattern %q\n", p.Text)
		}
	}

	// The refined space understands the expert vocabulary.
	agent, err := ontoconv.NewAgent(refined, base, ontoconv.AgentOptions{})
	if err != nil {
		log.Fatal(err)
	}
	session := ontoconv.NewSession()
	fmt.Println()
	for _, q := range []string{
		"is Warfarin safe to give?",
		"side effects of aspirin",
	} {
		fmt.Println("U:", q)
		fmt.Println("A:", agent.Respond(session, q))
	}
}
