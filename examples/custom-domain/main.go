// Custom domain: the pipeline is domain agnostic (paper §9: "Our
// techniques are domain agnostic, and can be applied to any KB"). This
// example builds a *library* knowledge base — books, authors, loans,
// reviews — discovers its ontology, bootstraps a conversation space with
// light SME feedback, and converses over it.
package main

import (
	"fmt"
	"log"

	"ontoconv"
)

func buildLibraryKB() (*ontoconv.KB, error) {
	base := ontoconv.NewKB()
	text := func(n string) ontoconv.Column { return ontoconv.Column{Name: n, Type: ontoconv.TextCol} }
	req := func(n string) ontoconv.Column {
		return ontoconv.Column{Name: n, Type: ontoconv.TextCol, NotNull: true}
	}
	tables := []ontoconv.Schema{
		{
			Name:       "author",
			Columns:    []ontoconv.Column{req("author_id"), req("name"), text("country")},
			PrimaryKey: "author_id",
		},
		{
			Name: "book",
			Columns: []ontoconv.Column{
				req("book_id"), req("name"), req("author_id"), text("genre"),
				{Name: "year", Type: ontoconv.IntCol},
			},
			PrimaryKey: "book_id",
			ForeignKeys: []ontoconv.ForeignKey{
				{Column: "author_id", RefTable: "author", RefColumn: "author_id"},
			},
		},
		{
			Name: "review",
			Columns: []ontoconv.Column{
				req("review_id"), req("book_id"), text("rating"), text("summary"),
			},
			PrimaryKey: "review_id",
			ForeignKeys: []ontoconv.ForeignKey{
				{Column: "book_id", RefTable: "book", RefColumn: "book_id"},
			},
		},
		{
			Name: "availability",
			Columns: []ontoconv.Column{
				req("avail_id"), req("book_id"), text("branch"), text("status"),
			},
			PrimaryKey: "avail_id",
			ForeignKeys: []ontoconv.ForeignKey{
				{Column: "book_id", RefTable: "book", RefColumn: "book_id"},
			},
		},
	}
	for _, s := range tables {
		if _, err := base.CreateTable(s); err != nil {
			return nil, err
		}
	}
	authors := [][]string{
		{"A1", "Ursula K. Le Guin", "US"},
		{"A2", "Jorge Luis Borges", "AR"},
		{"A3", "Stanislaw Lem", "PL"},
	}
	for _, a := range authors {
		base.Table("author").MustInsert(ontoconv.Row{a[0], a[1], a[2]})
	}
	books := []struct {
		id, name, author, genre string
		year                    int64
	}{
		{"B1", "The Dispossessed", "A1", "Science Fiction", 1974},
		{"B2", "The Left Hand of Darkness", "A1", "Science Fiction", 1969},
		{"B3", "Ficciones", "A2", "Short Stories", 1944},
		{"B4", "Solaris", "A3", "Science Fiction", 1961},
		{"B5", "The Cyberiad", "A3", "Short Stories", 1965},
	}
	for _, b := range books {
		base.Table("book").MustInsert(ontoconv.Row{b.id, b.name, b.author, b.genre, b.year})
	}
	i := 0
	for _, b := range books {
		i++
		base.Table("review").MustInsert(ontoconv.Row{fmt.Sprintf("R%d", i), b.id, []string{"5 stars", "4 stars", "3 stars"}[i%3], "A classic."})
		base.Table("availability").MustInsert(ontoconv.Row{fmt.Sprintf("V%d", i), b.id, []string{"Main", "North", "East"}[i%3], []string{"On shelf", "On loan"}[i%2]})
	}
	return base, nil
}

func main() {
	base, err := buildLibraryKB()
	if err != nil {
		log.Fatal(err)
	}
	onto, err := ontoconv.GenerateOntology(base, ontoconv.DefaultOntogenConfig("library"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("library ontology: %d concepts, %d relationships\n",
		onto.Stats().Concepts, onto.Stats().ObjectProperties)

	cfg := ontoconv.DefaultBootstrapConfig()
	cfg.KeyConcepts.MinKeep = 2
	cfg.KeyConcepts.MaxKeep = 3
	// Domain SMEs contribute the vocabulary (Table 2 for libraries).
	cfg.Entities.ConceptSynonyms = map[string][]string{
		"Book":         {"title", "novel", "volume"},
		"Author":       {"writer"},
		"Review":       {"ratings", "stars"},
		"Availability": {"copies", "where can I find", "availability status"},
	}
	space, err := ontoconv.Bootstrap(onto, base, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("bootstrapped %d intents (same pipeline, different domain)\n\n", len(space.Intents))

	agent, err := ontoconv.NewAgent(space, base, ontoconv.AgentOptions{
		Greeting: "Hello. Ask me about books, authors, reviews and availability.",
	})
	if err != nil {
		log.Fatal(err)
	}
	session := ontoconv.NewSession()
	fmt.Println("A:", agent.Greeting())
	for _, q := range []string{
		"show me the reviews for Solaris",
		"what about The Cyberiad?",
		"availability for Ficciones",
		"which books did Ursula K. Le Guin write",
	} {
		fmt.Println("U:", q)
		fmt.Println("A:", agent.Respond(session, q))
	}
}
