// Context follow-ups: demonstrates persistent context (§5.2) — the
// conversation "remembers" intents and entities across turns, so a single
// query can be built up over multiple utterances and then modified
// incrementally, like in a human conversation.
package main

import (
	"fmt"
	"log"

	"ontoconv"
)

func main() {
	base, _, space, err := ontoconv.MedicalBootstrap()
	if err != nil {
		log.Fatal(err)
	}
	agent, err := ontoconv.NewAgent(space, base, ontoconv.AgentOptions{})
	if err != nil {
		log.Fatal(err)
	}

	session := ontoconv.NewSession()
	steps := []struct{ user, note string }{
		{"give me the dosage", "partial query: no drug, no condition — the agent elicits"},
		{"Amoxicillin", "slot answer: fills the Drug slot"},
		{"bronchitis", "slot answer: fills the Condition slot"},
		{"adult", "slot answer: fills the AgeGroup slot — query complete"},
		{"I mean pediatric", "incremental modification: AgeGroup swapped, request re-run"},
		{"how about for Azithromycin?", "incremental modification: Drug swapped, everything else remembered"},
		{"adverse effects of Azithromycin", "topic change: new intent, context carries the drug"},
		{"what did you say?", "conversation management: repeat repair"},
		{"never mind", "conversation management: abort clears the task"},
	}
	for _, st := range steps {
		fmt.Printf("\n# %s\n", st.note)
		fmt.Println("U:", st.user)
		fmt.Println("A:", agent.Respond(session, st.user))
		fmt.Printf("  context: intent=%q bindings=%v\n", session.Ctx.Intent, session.Ctx.Bindings())
	}
}
