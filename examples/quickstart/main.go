// Quickstart: build a tiny knowledge base, let ontoconv discover its
// ontology, bootstrap a conversation space, and ask one question.
package main

import (
	"fmt"
	"log"

	"ontoconv"
)

func main() {
	// 1. A two-table knowledge base: companies and the products they ship.
	base := ontoconv.NewKB()
	companies, err := base.CreateTable(ontoconv.Schema{
		Name: "company",
		Columns: []ontoconv.Column{
			{Name: "company_id", Type: ontoconv.TextCol, NotNull: true},
			{Name: "name", Type: ontoconv.TextCol, NotNull: true},
			{Name: "sector", Type: ontoconv.TextCol},
		},
		PrimaryKey: "company_id",
	})
	if err != nil {
		log.Fatal(err)
	}
	products, err := base.CreateTable(ontoconv.Schema{
		Name: "product",
		Columns: []ontoconv.Column{
			{Name: "product_id", Type: ontoconv.TextCol, NotNull: true},
			{Name: "name", Type: ontoconv.TextCol, NotNull: true},
			{Name: "company_id", Type: ontoconv.TextCol, NotNull: true},
			{Name: "category", Type: ontoconv.TextCol},
		},
		PrimaryKey: "product_id",
		ForeignKeys: []ontoconv.ForeignKey{
			{Column: "company_id", RefTable: "company", RefColumn: "company_id"},
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range [][]string{
		{"C1", "AcmeCo", "Hardware"},
		{"C2", "Globex", "Software"},
		{"C3", "Initech", "Software"},
	} {
		companies.MustInsert(ontoconv.Row{r[0], r[1], r[2]})
	}
	for _, r := range [][]string{
		{"P1", "Rocket Skates", "C1", "Gadgets"},
		{"P2", "Portable Hole", "C1", "Gadgets"},
		{"P3", "Hypnotizer", "C2", "Appliances"},
		{"P4", "TPS Reporter", "C3", "Appliances"},
	} {
		products.MustInsert(ontoconv.Row{r[0], r[1], r[2], r[3]})
	}

	// 2. Discover the ontology from schema + data statistics.
	onto, err := ontoconv.GenerateOntology(base, ontoconv.DefaultOntogenConfig("shop"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("discovered ontology: %d concepts, %d relationships\n",
		onto.Stats().Concepts, onto.Stats().ObjectProperties)

	// 3. Bootstrap the conversation space (intents, examples, entities,
	// SQL templates) and train an agent on it.
	cfg := ontoconv.DefaultBootstrapConfig()
	cfg.KeyConcepts.MinKeep = 1
	cfg.KeyConcepts.MaxKeep = 2
	space, err := ontoconv.Bootstrap(onto, base, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("bootstrapped %d intents with %d training examples\n",
		len(space.Intents), len(space.AllExamples()))

	agent, err := ontoconv.NewAgent(space, base, ontoconv.AgentOptions{
		Greeting: "Hello, ask me about companies and products.",
	})
	if err != nil {
		log.Fatal(err)
	}

	// 4. Chat.
	session := ontoconv.NewSession()
	for _, q := range []string{
		"show me the products for AcmeCo",
		"what about Globex?",
	} {
		fmt.Println("U:", q)
		fmt.Println("A:", agent.Respond(session, q))
	}
}
