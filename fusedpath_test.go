package ontoconv_test

import (
	"fmt"
	"testing"

	"ontoconv/internal/nlu"
	"ontoconv/internal/sim"
)

// TestFusedPredictMatchesReferenceE3 is the acceptance-level
// differential test for the fused NLU path: both classifier families are
// trained on the full MDX conversation space, then every opening
// utterance of an E3 simulation run — task requests, misspellings,
// keyword-style fragments, and gibberish — must score bit-identically
// (intent, confidence, and the full posterior vector) on the fused and
// reference paths, and PredictTop must return exactly Predict's winner.
func TestFusedPredictMatchesReferenceE3(t *testing.T) {
	_, space, ag := mdxFixture(t)

	cfg := sim.DefaultConfig()
	cfg.Interactions = 400
	log := sim.Run(ag, cfg)
	var utterances []string
	for _, in := range log.Interactions {
		utterances = append(utterances, in.Utterance)
	}
	if len(utterances) == 0 {
		t.Fatal("simulation produced no utterances")
	}

	var examples []nlu.Example
	for _, te := range space.AllExamples() {
		examples = append(examples, nlu.Example{Text: te.Text, Intent: te.Intent})
	}

	type refPredictor interface {
		nlu.Classifier
		PredictReference(text string) nlu.Prediction
	}
	for _, c := range []refPredictor{nlu.NewNaiveBayes(1.0), nlu.NewLogisticRegression()} {
		if err := c.Train(examples); err != nil {
			t.Fatal(err)
		}
		label := fmt.Sprintf("%T", c)
		for _, text := range utterances {
			fused, ref := c.Predict(text), c.PredictReference(text)
			if fused.Intent != ref.Intent || fused.Confidence != ref.Confidence {
				t.Fatalf("%s(%q): fused (%q, %v) != reference (%q, %v)",
					label, text, fused.Intent, fused.Confidence, ref.Intent, ref.Confidence)
			}
			if len(fused.Scores) != len(ref.Scores) {
				t.Fatalf("%s(%q): %d scores, reference has %d", label, text, len(fused.Scores), len(ref.Scores))
			}
			for i := range fused.Scores {
				if fused.Scores[i] != ref.Scores[i] {
					t.Fatalf("%s(%q): score[%d] fused %+v != reference %+v",
						label, text, i, fused.Scores[i], ref.Scores[i])
				}
			}
			if intent, conf := nlu.PredictTop(c, text); intent != fused.Intent || conf != fused.Confidence {
				t.Fatalf("%s: PredictTop(%q) = (%q, %v), Predict = (%q, %v)",
					label, text, intent, conf, fused.Intent, fused.Confidence)
			}
		}
	}
}
