// Package ontoconv is an ontology-based conversation system for knowledge
// bases: a from-scratch Go implementation of the system described in
// "An Ontology-Based Conversation System for Knowledge Bases" (SIGMOD
// 2020).
//
// Given a relational knowledge base, the library
//
//   - discovers (or accepts) an OWL-style domain ontology over it,
//   - bootstraps a complete conversation space from that ontology: user
//     intents grounded in query patterns, training examples generated from
//     KB instance data, entities with domain synonyms, and parameterized
//     SQL query templates,
//   - compiles a dialogue tree with slot filling, persistent context and
//     conversation management, and
//   - serves a multi-turn conversation agent that answers natural-language
//     questions by executing the templates against the KB.
//
// The pipeline is domain agnostic; the bundled medical knowledge base
// (the paper's IBM Micromedex use case) is one instantiation, and
// examples/custom-domain shows another.
//
// # Quick start
//
//	base := ontoconv.NewKB()
//	// … create tables, insert rows …
//	onto, _ := ontoconv.GenerateOntology(base, ontoconv.DefaultOntogenConfig("mydomain"))
//	space, _ := ontoconv.Bootstrap(onto, base, ontoconv.DefaultBootstrapConfig())
//	agent, _ := ontoconv.NewAgent(space, base, ontoconv.AgentOptions{})
//	session := ontoconv.NewSession()
//	fmt.Println(agent.Respond(session, "show me the widgets for AcmeCo"))
//
// The subpackages under internal/ hold the implementation; this package is
// the supported public surface.
package ontoconv

import (
	"io"

	"ontoconv/internal/agent"
	"ontoconv/internal/bundle"
	"ontoconv/internal/core"
	"ontoconv/internal/dialogue"
	"ontoconv/internal/eval"
	"ontoconv/internal/kb"
	"ontoconv/internal/medkb"
	"ontoconv/internal/nlq"
	"ontoconv/internal/nlu"
	"ontoconv/internal/obs"
	"ontoconv/internal/ontogen"
	"ontoconv/internal/ontology"
	"ontoconv/internal/retailkb"
	"ontoconv/internal/sim"
	"ontoconv/internal/sqlx"
)

// Knowledge-base types.
type (
	// KB is the in-memory relational knowledge base.
	KB = kb.KB
	// Schema describes one KB table.
	Schema = kb.Schema
	// Column describes one table column.
	Column = kb.Column
	// ForeignKey declares a referential constraint.
	ForeignKey = kb.ForeignKey
	// Row is one tuple.
	Row = kb.Row
)

// Column types.
const (
	TextCol  = kb.TextCol
	IntCol   = kb.IntCol
	FloatCol = kb.FloatCol
	BoolCol  = kb.BoolCol
)

// NewKB returns an empty knowledge base.
func NewKB() *KB { return kb.New() }

// Ontology types.
type (
	// Ontology is the OWL-style domain ontology.
	Ontology = ontology.Ontology
	// Concept is an OWL class.
	Concept = ontology.Concept
	// DataProperty is a literal-valued property of a concept.
	DataProperty = ontology.DataProperty
	// ObjectProperty is a relationship between concepts.
	ObjectProperty = ontology.ObjectProperty
	// OntogenConfig tunes data-driven ontology discovery.
	OntogenConfig = ontogen.Config
)

// NewOntology returns an empty named ontology.
func NewOntology(name string) *Ontology { return ontology.New(name) }

// GenerateOntology infers an ontology from the KB's schema and data
// statistics (concepts from tables, relationships from foreign keys, isA
// from subtype tables, unions from disjoint exhaustive children).
func GenerateOntology(base *KB, cfg OntogenConfig) (*Ontology, error) {
	return ontogen.Generate(base, cfg)
}

// DefaultOntogenConfig returns the discovery thresholds used by the paper
// reproduction.
func DefaultOntogenConfig(name string) OntogenConfig { return ontogen.DefaultConfig(name) }

// Conversation-space types.
type (
	// Space is a bootstrapped conversation space.
	Space = core.Space
	// Intent is one conversation intent.
	Intent = core.Intent
	// EntityDef is one entity dictionary entry set.
	EntityDef = core.EntityDef
	// BootstrapConfig tunes the bootstrap pipeline.
	BootstrapConfig = core.Config
	// SMEFeedback carries subject-matter-expert refinements.
	SMEFeedback = core.Feedback
	// SMEPattern is one expert-identified query pattern.
	SMEPattern = core.SMEPattern
)

// Bootstrap runs the offline pipeline: key-concept discovery, pattern
// extraction, SME feedback, training-example generation, query-template
// generation, and entity extraction.
func Bootstrap(o *Ontology, base *KB, cfg BootstrapConfig) (*Space, error) {
	return core.Bootstrap(o, base, cfg)
}

// DefaultBootstrapConfig returns the configuration used by the paper
// reproduction.
func DefaultBootstrapConfig() BootstrapConfig { return core.DefaultConfig() }

// Agent types.
type (
	// Agent is the online conversation agent.
	Agent = agent.Agent
	// AgentOptions configures agent construction.
	AgentOptions = agent.Options
	// Session is one user conversation.
	Session = agent.Session
	// KeywordAgent is the search-style baseline.
	KeywordAgent = agent.KeywordAgent
)

// NewAgent trains the classifier, builds the recognizer and dialogue tree,
// and returns a ready agent.
func NewAgent(space *Space, base *KB, opts AgentOptions) (*Agent, error) {
	return agent.New(space, base, opts)
}

// Workspace-bundle types (the offline/online hand-off artifact).
type (
	// WorkspaceBundle is a compiled, versioned, immutable workspace: the
	// serialized space plus the trained classifier, recognizer dictionary,
	// logic table, and dialogue tree, sealed under a hashed manifest.
	WorkspaceBundle = bundle.Bundle
	// BundleManifest is a bundle's self-description.
	BundleManifest = bundle.Manifest
	// BundleOptions tunes bundle compilation.
	BundleOptions = bundle.Options
)

// CompileBundle trains and packages a conversation space into a workspace
// bundle. Compilation is deterministic: the same space always yields
// byte-identical bundle output.
func CompileBundle(space *Space, opts BundleOptions) (*WorkspaceBundle, error) {
	return bundle.Compile(space, opts)
}

// OpenBundle reads, verifies, and decodes a workspace bundle; it rejects
// truncated, corrupt, or hash-mismatched input with an error.
func OpenBundle(r io.Reader) (*WorkspaceBundle, error) { return bundle.Open(r) }

// OpenBundleFile opens and verifies a workspace bundle file.
func OpenBundleFile(path string) (*WorkspaceBundle, error) { return bundle.OpenFile(path) }

// NewAgentFromBundle builds an agent from a compiled bundle without
// retraining — the fast cold-start path for serving.
func NewAgentFromBundle(b *WorkspaceBundle, base *KB, opts AgentOptions) (*Agent, error) {
	return agent.NewFromBundle(b, base, opts)
}

// NewSession returns a fresh conversation session.
func NewSession() *Session { return agent.NewSession() }

// NewKeywordAgent builds the keyword-search baseline over the same space.
func NewKeywordAgent(space *Space, base *KB) *KeywordAgent {
	return agent.NewKeywordAgent(space, base)
}

// Dialogue types.
type (
	// DialogueTree is the compiled dialogue structure.
	DialogueTree = dialogue.Tree
	// LogicTable is the generated Dialogue Logic Table.
	LogicTable = dialogue.LogicTable
)

// NLU types.
type (
	// Classifier is the intent-classification interface.
	Classifier = nlu.Classifier
	// Recognizer is the dictionary entity recognizer.
	Recognizer = nlu.Recognizer
)

// NewNaiveBayes returns a multinomial naive Bayes intent classifier.
func NewNaiveBayes(alpha float64) Classifier { return nlu.NewNaiveBayes(alpha) }

// NewLogisticRegression returns a softmax-regression intent classifier.
func NewLogisticRegression() Classifier { return nlu.NewLogisticRegression() }

// NLQ types.
type (
	// NLQService compiles structured requests to SQL over an ontology.
	NLQService = nlq.Service
	// NLQRequest is a structured query request.
	NLQRequest = nlq.Request
	// QueryTemplate is a parameterized SQL template.
	QueryTemplate = sqlx.Template
)

// NewNLQService builds the NL-query service over an ontology.
func NewNLQService(o *Ontology) *NLQService { return nlq.New(o) }

// ExecSQL parses and executes a SQL statement against the KB.
func ExecSQL(base *KB, sql string) (*sqlx.Result, error) { return sqlx.Exec(base, sql) }

// Medical use case (the paper's §6 deployment).

// MedicalKB generates the deterministic synthetic Micromedex-style
// knowledge base.
func MedicalKB() (*KB, error) { return medkb.Generate(medkb.DefaultConfig()) }

// MedicalBootstrap builds the complete MDX environment: KB, curated
// ontology, and bootstrapped conversation space with the paper's SME
// feedback applied.
func MedicalBootstrap() (*KB, *Ontology, *Space, error) { return medkb.Bootstrap() }

// MedicalBootstrapTimed is MedicalBootstrap with per-phase timing recorded
// into pl (see NewPhaseLog).
func MedicalBootstrapTimed(pl *PhaseLog) (*KB, *Ontology, *Space, error) {
	return medkb.BootstrapWithPhases(pl)
}

// Retail use case (the standing second tenant for multi-workspace
// serving; same pipeline, different domain — paper §9).

// RetailKB generates the deterministic synthetic retail knowledge base
// (products, brands, stores, inventory).
func RetailKB() (*KB, error) { return retailkb.Generate(retailkb.DefaultConfig()) }

// RetailBootstrap builds the complete retail environment: KB, curated
// ontology, and bootstrapped conversation space.
func RetailBootstrap() (*KB, *Ontology, *Space, error) { return retailkb.Bootstrap() }

// RetailBootstrapTimed is RetailBootstrap with per-phase timing recorded
// into pl (see NewPhaseLog).
func RetailBootstrapTimed(pl *PhaseLog) (*KB, *Ontology, *Space, error) {
	return retailkb.BootstrapWithPhases(pl)
}

// BuildKBIndexes builds the secondary indexes the serving fast path uses:
// foreign-key join columns plus every column the space's query templates
// filter with an equality pushdown. Call it after loading a KB and before
// serving traffic (the bootstrap does this automatically; the bundle
// cold-start path must do it explicitly). Returns the number of indexes
// built.
func BuildKBIndexes(base *KB, space *Space) (int, error) {
	return medkb.BuildIndexes(base, space)
}

// Observability types (the serving-time measurement layer).
type (
	// MetricsRegistry is the dependency-free metric registry with a
	// Prometheus text-exposition writer.
	MetricsRegistry = obs.Registry
	// AgentMetrics is the agent's metric bundle: turn and per-stage
	// latency, per-intent classification/fulfillment/feedback counters,
	// and session lifecycle (the paper's Figure 11 bookkeeping, live).
	AgentMetrics = agent.Metrics
	// TurnTrace is the per-stage execution trace attached to each turn.
	TurnTrace = obs.Trace
	// PhaseLog collects per-phase durations of the offline bootstrap.
	PhaseLog = obs.PhaseLog
)

// NewMetricsRegistry returns an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// NewAgentMetrics builds an agent metric bundle on a fresh registry; pass
// it via AgentOptions.Metrics to share one registry across agents.
func NewAgentMetrics() *AgentMetrics { return agent.NewMetrics() }

// NewPhaseLog returns an empty bootstrap phase log.
func NewPhaseLog() *PhaseLog { return obs.NewPhaseLog() }

// Evaluation (the paper's §7 experiments).
type (
	// EvalEnv bundles the artifacts the experiments run against.
	EvalEnv = eval.Env
	// UsageSimConfig tunes the simulated usage study.
	UsageSimConfig = sim.Config
	// UsageLog is a simulated interaction log.
	UsageLog = sim.Log
)

// NewEvalEnv builds the full evaluation environment.
func NewEvalEnv() (*EvalEnv, error) { return eval.NewEnv() }

// SimulateUsage runs the seeded usage study against an agent.
func SimulateUsage(a *Agent, cfg UsageSimConfig) *UsageLog { return sim.Run(a, cfg) }

// DefaultUsageSimConfig returns the calibration used by the experiments.
func DefaultUsageSimConfig() UsageSimConfig { return sim.DefaultConfig() }
